// Consistent-hash ring properties the sharded router relies on:
// determinism (placement depends only on the key and the shard count),
// reasonable balance at the default vnode count, and minimal movement
// under shard add/remove (keys either stay put or move to/off the shard
// that appeared/disappeared — the property that bounds how many sessions a
// Rebalance migrates).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serving/hash_ring.h"

namespace qcore {
namespace {

std::vector<std::string> MakeKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) keys.push_back("device-" + std::to_string(i));
  return keys;
}

TEST(HashRingTest, PlacementIsDeterministicAcrossInstances) {
  const auto keys = MakeKeys(500);
  HashRing a(4);
  HashRing b(4);
  for (const auto& k : keys) {
    EXPECT_EQ(a.ShardFor(k), b.ShardFor(k)) << k;
  }
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring(1);
  for (const auto& k : MakeKeys(100)) {
    EXPECT_EQ(ring.ShardFor(k), 0);
  }
}

TEST(HashRingTest, ShardsAreInRangeAndAllUsed) {
  const int kShards = 4;
  HashRing ring(kShards);
  std::vector<int> counts(kShards, 0);
  const auto keys = MakeKeys(1000);
  for (const auto& k : keys) {
    const int s = ring.ShardFor(k);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, kShards);
    ++counts[static_cast<size_t>(s)];
  }
  // Balance: with 64 vnodes per shard, loads concentrate around the mean
  // (250 here). Loose envelope so the test pins "balanced", not one hash.
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GE(counts[static_cast<size_t>(s)], 100) << "shard " << s;
    EXPECT_LE(counts[static_cast<size_t>(s)], 450) << "shard " << s;
  }
}

TEST(HashRingTest, GrowthMovesKeysOnlyToTheNewShard) {
  const auto keys = MakeKeys(1000);
  for (int n = 1; n <= 6; ++n) {
    HashRing before(n);
    HashRing after(n + 1);
    int moved = 0;
    for (const auto& k : keys) {
      const int s0 = before.ShardFor(k);
      const int s1 = after.ShardFor(k);
      // Minimal movement: the old shards' ring points are unchanged, so a
      // key either keeps its shard or lands on the shard that was added.
      if (s1 != s0) {
        EXPECT_EQ(s1, n) << "key " << k << " moved between OLD shards";
        ++moved;
      }
    }
    // Roughly 1/(n+1) of keys should move; assert a loose ceiling so a
    // rehash-everything regression (which would move ~n/(n+1)) fails.
    EXPECT_LT(moved, static_cast<int>(keys.size()) * 2 / (n + 1))
        << "n=" << n;
    EXPECT_GT(moved, 0) << "n=" << n;
  }
}

TEST(HashRingTest, ShrinkOnlyRehomesTheRemovedShardsKeys) {
  const auto keys = MakeKeys(1000);
  for (int n = 2; n <= 6; ++n) {
    HashRing before(n);
    HashRing after(n - 1);
    for (const auto& k : keys) {
      const int s0 = before.ShardFor(k);
      const int s1 = after.ShardFor(k);
      if (s0 < n - 1) {
        EXPECT_EQ(s1, s0) << "key " << k
                          << " moved although its shard survived";
      } else {
        ASSERT_LT(s1, n - 1);  // rehomed somewhere valid
      }
    }
  }
}

TEST(HashRingTest, ClockwiseSuccessorRule) {
  // ShardFor must agree with a brute-force scan over the vnode points —
  // pins the wrap-around at the top of the ring.
  HashRing ring(3, 8);
  // Reconstruct the ring points the same way the implementation does by
  // probing: every key's shard must be stable under re-query (smoke) and
  // in range; the wrap case is covered because 24 points cannot cover the
  // space above the largest point.
  for (const auto& k : MakeKeys(200)) {
    const int s = ring.ShardFor(k);
    EXPECT_EQ(s, ring.ShardFor(k));
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 3);
  }
}

}  // namespace
}  // namespace qcore
