// Unit tests for data/: Dataset semantics, stream splitting, domain
// augmentation, and the synthetic HAR/image generators.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.h"
#include "data/har_generator.h"
#include "data/image_generator.h"

namespace qcore {
namespace {

Dataset TinyDataset() {
  Tensor x = Tensor::FromVector({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  return Dataset(std::move(x), {0, 1, 0, 1}, 2);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.size(), 4);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_EQ(d.ClassCounts(), (std::vector<int>{2, 2}));
}

TEST(DatasetTest, SubsetCopiesRows) {
  Dataset d = TinyDataset();
  Dataset s = d.Subset({2, 0});
  EXPECT_EQ(s.size(), 2);
  EXPECT_FLOAT_EQ(s.x().at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(s.x().at(1, 0), 1.0f);
  EXPECT_EQ(s.labels()[0], 0);
}

TEST(DatasetTest, ConcatAndEmpty) {
  Dataset d = TinyDataset();
  Dataset c = Dataset::Concat(d, d.Subset({0}));
  EXPECT_EQ(c.size(), 5);
  Dataset e;
  EXPECT_EQ(Dataset::Concat(e, d).size(), 4);
  EXPECT_EQ(Dataset::Concat(d, e).size(), 4);
}

TEST(DatasetTest, ExampleKeepsBatchAxis) {
  Dataset d = TinyDataset();
  Tensor e = d.Example(1);
  EXPECT_EQ(e.dim(0), 1);
  EXPECT_FLOAT_EQ(e.at(0, 1), 4.0f);
}

TEST(DatasetTest, ReplicateToReachesTargetAndKeepsLabels) {
  Rng rng(1);
  Dataset d = TinyDataset();
  Dataset r = d.ReplicateTo(11, &rng);
  EXPECT_EQ(r.size(), 11);
  // Every replicated label/feature pair must come from the original.
  for (int i = 0; i < r.size(); ++i) {
    bool found = false;
    for (int j = 0; j < d.size(); ++j) {
      if (r.labels()[static_cast<size_t>(i)] ==
              d.labels()[static_cast<size_t>(j)] &&
          r.x().at(i, 0) == d.x().at(j, 0)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
  // Each original example appears at least twice (11 / 4 rounded down).
  for (int j = 0; j < d.size(); ++j) {
    int count = 0;
    for (int i = 0; i < r.size(); ++i) {
      if (r.x().at(i, 0) == d.x().at(j, 0)) ++count;
    }
    EXPECT_GE(count, 2);
  }
}

TEST(DatasetTest, ShuffledIsPermutation) {
  Rng rng(2);
  Dataset d = TinyDataset();
  Dataset s = d.Shuffled(&rng);
  std::multiset<float> a, b;
  for (int i = 0; i < 4; ++i) {
    a.insert(d.x().at(i, 0));
    b.insert(s.x().at(i, 0));
  }
  EXPECT_EQ(a, b);
}

// Stream-splitting property: parts partition the dataset.
class StreamSplitTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamSplitTest, PartitionsExactly) {
  Rng rng(3);
  const int parts = GetParam();
  HarSpec spec = HarSpec::Usc();
  spec.train_per_class = 5;
  Dataset d = MakeHarDomain(spec, 0).train;
  std::vector<Dataset> batches = SplitIntoStreamBatches(d, parts, &rng);
  ASSERT_EQ(static_cast<int>(batches.size()), parts);
  int total = 0;
  for (const auto& b : batches) {
    EXPECT_GE(b.size(), d.size() / parts);
    total += b.size();
  }
  EXPECT_EQ(total, d.size());
}

INSTANTIATE_TEST_SUITE_P(Parts, StreamSplitTest,
                         ::testing::Values(1, 2, 3, 7, 10));

TEST(AugmentDomainTest, PreservesLabelsChangesValues) {
  Rng rng(4);
  HarSpec spec = HarSpec::Dsa();
  spec.train_per_class = 2;
  Dataset d = MakeHarDomain(spec, 0).train;
  Dataset a = AugmentDomain(d, 1.0f, &rng);
  EXPECT_EQ(a.labels(), d.labels());
  double diff = 0.0;
  for (int64_t i = 0; i < d.x().size(); ++i) {
    diff += std::fabs(a.x()[i] - d.x()[i]);
  }
  EXPECT_GT(diff / d.x().size(), 0.01);
}

TEST(AugmentDomainTest, ZeroStrengthStillAddsOnlyTinyNoise) {
  Rng rng(5);
  Dataset d = TinyDataset();
  Dataset a = AugmentDomain(d, 0.0f, &rng);
  for (int64_t i = 0; i < d.x().size(); ++i) {
    EXPECT_NEAR(a.x()[i], d.x()[i], 1e-5f);
  }
}

TEST(HarGeneratorTest, SpecsMatchPaperShapes) {
  HarSpec dsa = HarSpec::Dsa();
  EXPECT_EQ(dsa.num_classes, 19);
  EXPECT_EQ(dsa.num_subjects, 8);
  HarSpec usc = HarSpec::Usc();
  EXPECT_EQ(usc.num_classes, 12);
  EXPECT_EQ(usc.num_subjects, 14);
}

TEST(HarGeneratorTest, ShapesAndLabelRanges) {
  HarSpec spec = HarSpec::Dsa();
  spec.train_per_class = 3;
  HarDomain dom = MakeHarDomain(spec, 0);
  EXPECT_EQ(dom.train.size(), 3 * spec.num_classes);
  EXPECT_EQ(dom.train.x().ndim(), 3);
  EXPECT_EQ(dom.train.x().dim(1), spec.channels);
  EXPECT_EQ(dom.train.x().dim(2), spec.length);
  for (int y : dom.train.labels()) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, spec.num_classes);
  }
  // Every class appears exactly per-class times.
  for (int count : dom.train.ClassCounts()) EXPECT_EQ(count, 3);
}

TEST(HarGeneratorTest, Deterministic) {
  HarSpec spec = HarSpec::Usc();
  spec.train_per_class = 2;
  HarDomain a = MakeHarDomain(spec, 1);
  HarDomain b = MakeHarDomain(spec, 1);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (int64_t i = 0; i < a.train.x().size(); ++i) {
    EXPECT_FLOAT_EQ(a.train.x()[i], b.train.x()[i]);
  }
}

TEST(HarGeneratorTest, SubjectsDiffer) {
  HarSpec spec = HarSpec::Dsa();
  spec.train_per_class = 2;
  Dataset a = MakeHarDomain(spec, 0).train;
  Dataset b = MakeHarDomain(spec, 1).train;
  double diff = 0.0;
  for (int64_t i = 0; i < a.x().size(); ++i) {
    diff += std::fabs(a.x()[i] - b.x()[i]);
  }
  EXPECT_GT(diff / a.x().size(), 0.05);
}

TEST(HarGeneratorTest, ZeroShiftSubjectsNearlyIdenticalInDistribution) {
  HarSpec spec = HarSpec::Dsa();
  spec.train_per_class = 4;
  spec.domain_shift = 0.0f;
  // With zero shift, per-channel means across subjects should be close.
  Dataset a = MakeHarDomain(spec, 0).train;
  Dataset b = MakeHarDomain(spec, 3).train;
  EXPECT_NEAR(a.x().Mean(), b.x().Mean(), 0.05f);
}

TEST(ImageGeneratorTest, DomainsAndShapes) {
  ImageSpec spec = ImageSpec::Caltech10();
  EXPECT_EQ(spec.num_domains(), 4);
  EXPECT_EQ(spec.DomainIndex("DSLR"), 2);
  spec.train_per_class = 2;
  ImageDomain dom = MakeImageDomain(spec, 0);
  EXPECT_EQ(dom.train.x().ndim(), 4);
  EXPECT_EQ(dom.train.x().dim(1), 3);
  EXPECT_EQ(dom.train.x().dim(2), 16);
  EXPECT_EQ(dom.train.size(), 2 * 10);
}

TEST(ImageGeneratorTest, DomainsDifferDeterministically) {
  ImageSpec spec = ImageSpec::Caltech10();
  spec.train_per_class = 2;
  Dataset amazon = MakeImageDomain(spec, 0).train;
  Dataset webcam = MakeImageDomain(spec, 3).train;
  Dataset amazon2 = MakeImageDomain(spec, 0).train;
  double cross = 0.0, self = 0.0;
  for (int64_t i = 0; i < amazon.x().size(); ++i) {
    cross += std::fabs(amazon.x()[i] - webcam.x()[i]);
    self += std::fabs(amazon.x()[i] - amazon2.x()[i]);
  }
  EXPECT_GT(cross / amazon.x().size(), 0.05);
  EXPECT_FLOAT_EQ(self, 0.0);
}

}  // namespace
}  // namespace qcore
