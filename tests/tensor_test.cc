// Unit tests for tensor/: Tensor container semantics and the free-function
// operations (GEMM variants, elementwise, softmax, reductions).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

TEST(TensorTest, ZerosShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(2), 4);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromVectorAndIndexing) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, RankedAccessorsMatchFlat) {
  Tensor t3 = Tensor::FromVector({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t3.at(1, 0, 1), 5.0f);
  Tensor t4({2, 2, 2, 2});
  t4[15] = 9.0f;
  EXPECT_EQ(t4.at(1, 1, 1, 1), 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_EQ(r.at(0, 1), 2.0f);
}

TEST(TensorTest, SliceRows) {
  Tensor t = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = t.SliceRows(1, 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.at(0, 0), 3.0f);
  EXPECT_EQ(s.at(1, 1), 6.0f);
}

TEST(TensorTest, GatherRows) {
  Tensor t = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = t.GatherRows({2, 0, 2});
  EXPECT_EQ(g.dim(0), 3);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 0), 1.0f);
  EXPECT_EQ(g.at(2, 1), 6.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromVector({4}, {-3, 1, 2, 0});
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.Min(), -3.0f);
  EXPECT_FLOAT_EQ(t.Max(), 2.0f);
  EXPECT_FLOAT_EQ(t.AbsMax(), 3.0f);
  EXPECT_EQ(t.ArgMax(), 2);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::Randn({10000}, &rng, 2.0f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.1f);
  double var = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) var += t[i] * t[i];
  EXPECT_NEAR(var / t.size(), 4.0, 0.3);
}

TEST(TensorOpsTest, MatMulSmallKnown) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorOpsTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(11);
  Tensor a = Tensor::Randn({4, 5}, &rng);
  Tensor b = Tensor::Randn({6, 5}, &rng);
  // a * b^T via MatMulTransposedB vs MatMul(a, transpose(b)).
  Tensor direct = MatMulTransposedB(a, b);
  Tensor reference = MatMul(a, Transpose2d(b));
  ASSERT_TRUE(direct.SameShape(reference));
  for (int64_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], reference[i], 1e-4f);
  }
  // a^T * c via MatMulTransposedA.
  Tensor c = Tensor::Randn({4, 7}, &rng);
  Tensor direct2 = MatMulTransposedA(a, c);
  Tensor reference2 = MatMul(Transpose2d(a), c);
  ASSERT_TRUE(direct2.SameShape(reference2));
  for (int64_t i = 0; i < direct2.size(); ++i) {
    EXPECT_NEAR(direct2[i], reference2[i], 1e-4f);
  }
}

TEST(TensorOpsTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(Add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b)[0], -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[2], 18.0f);
  Tensor c = a;
  AddInPlace(&c, b);
  EXPECT_FLOAT_EQ(c[2], 9.0f);
  AxpyInPlace(&c, -1.0f, b);
  EXPECT_FLOAT_EQ(c[2], 3.0f);
  ScaleInPlace(&c, 2.0f);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
  EXPECT_FLOAT_EQ(MulScalar(a, 3.0f)[1], 6.0f);
  EXPECT_FLOAT_EQ(AddScalar(a, 1.0f)[0], 2.0f);
}

TEST(TensorOpsTest, SoftmaxRowsSumToOneAndOrder) {
  Tensor logits = Tensor::FromVector({2, 3}, {1, 2, 3, -1, -1, 5});
  Tensor p = SoftmaxRows(logits);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += p.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p.at(0, 2), p.at(0, 1));
  EXPECT_GT(p.at(1, 2), 0.9f);
}

TEST(TensorOpsTest, SoftmaxNumericallyStable) {
  Tensor logits = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor p = SoftmaxRows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0f, 1e-5f);
}

TEST(TensorOpsTest, ArgMaxRows) {
  Tensor t = Tensor::FromVector({2, 3}, {0, 5, 2, 9, 1, 1});
  std::vector<int> am = ArgMaxRows(t);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(TensorOpsTest, DotAndNorm) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 2});
  EXPECT_DOUBLE_EQ(Dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(Norm(a), 3.0);
}

TEST(TensorOpsTest, ConcatRows) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = ConcatRows(a, b);
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_FLOAT_EQ(c.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(c.at(2, 0), 5.0f);
}

TEST(TensorOpsTest, ConcatRowsMany) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = Tensor::FromVector({1, 2}, {7, 8});
  Tensor out = ConcatRows({&a, &b, &c});
  ASSERT_EQ(out.dim(0), 4);
  EXPECT_EQ(out.dim(1), 2);
  // Rows land contiguously in input order — the gather half of the
  // inference batcher.
  const std::vector<float> expected = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(out.vec().size(), expected.size());
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.vec().begin()));
  // Single-part concat is the identity.
  Tensor single = ConcatRows({&b});
  EXPECT_TRUE(std::equal(b.vec().begin(), b.vec().end(), single.vec().begin()));
  EXPECT_EQ(single.shape(), b.shape());
}

// Parameterized GEMM property: (A*B)*C == A*(B*C) within tolerance, across
// sizes.
class MatMulAssocTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulAssocTest, Associativity) {
  Rng rng(100 + GetParam());
  const int64_t m = 1 + GetParam() % 5;
  const int64_t k = 2 + GetParam() % 7;
  const int64_t n = 1 + (GetParam() * 3) % 6;
  const int64_t p = 2 + (GetParam() * 5) % 4;
  Tensor a = Tensor::Randn({m, k}, &rng);
  Tensor b = Tensor::Randn({k, n}, &rng);
  Tensor c = Tensor::Randn({n, p}, &rng);
  Tensor left = MatMul(MatMul(a, b), c);
  Tensor right = MatMul(a, MatMul(b, c));
  ASSERT_TRUE(left.SameShape(right));
  for (int64_t i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left[i], right[i], 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatMulAssocTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace qcore
