// Tests for the annotated synchronization wrappers (common/mutex.h): the
// runtime semantics every converted class now depends on — scoped
// acquire/release, temporary Unlock/Lock windows, CondVar predicate waits
// and timeouts, and genuine reader concurrency under SharedLock.
//
// The compile-time half of the contract (clang -Wthread-safety under
// QCORE_THREAD_SAFETY) cannot be asserted from inside a passing test; the
// negative cases live in the QCORE_TSA_NEGATIVE_COMPILE block at the
// bottom, which MUST fail to compile under the clang analysis job when
// enabled:
//   clang++ -DQCORE_TSA_NEGATIVE_COMPILE -Wthread-safety -Werror ...
// CI's thread-safety job builds the tree without the define (must pass)
// and compiles this file with it (must fail) — both directions gated.

#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "common/thread_annotations.h"

namespace qcore {
namespace {

TEST(MutexTest, LockUnlockProtectsCounter) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4000);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // Same thread, second attempt: std::mutex try_lock on an owned mutex is
  // UB from the owner, so probe from another thread instead.
  std::atomic<bool> second_got{true};
  std::thread probe([&]() { second_got = mu.TryLock(); });
  probe.join();
  EXPECT_FALSE(second_got.load());
  mu.Unlock();
  std::thread probe2([&]() {
    ASSERT_TRUE(mu.TryLock());
    mu.Unlock();
  });
  probe2.join();
}

TEST(MutexTest, ScopedUnlockRelockWindow) {
  // The batcher/flusher pattern: a scoped lock opens a window (sink call,
  // chaos stall) and re-acquires before the scope ends.
  Mutex mu;
  int guarded = 0;
  std::atomic<bool> window_open{false};
  std::atomic<bool> side_ran{false};
  std::thread side([&]() {
    while (!window_open.load()) std::this_thread::yield();
    MutexLock lock(mu);
    ++guarded;  // only possible while the main scope's lock is released
    side_ran = true;
  });
  {
    MutexLock lock(mu);
    ++guarded;
    lock.Unlock();
    window_open = true;
    while (!side_ran.load()) std::this_thread::yield();
    lock.Lock();
    ++guarded;
  }
  side.join();
  EXPECT_EQ(guarded, 3);
}

TEST(CondVarTest, PredicateWaitSeesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() {
      mu.AssertHeld();
      return ready;
    });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, PlainWaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool done = false;
  std::thread waiter([&]() {
    MutexLock lock(mu);
    while (!done) cv.Wait(mu);
  });
  // One set + notify suffices: the waiter only blocks while !done holds
  // under the lock, so either it re-checks after this store or it was
  // already parked and the notify wakes it (spurious wakeups re-check).
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.NotifyAll();
  waiter.join();
  SUCCEED();
}

TEST(CondVarTest, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(CondVarTest, WaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(5)),
            std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilWakesBeforeDeadlineOnNotify) {
  Mutex mu;
  CondVar cv;
  std::atomic<bool> waiting{false};
  std::thread notifier([&]() {
    while (!waiting.load()) std::this_thread::yield();
    cv.NotifyAll();
  });
  MutexLock lock(mu);
  waiting = true;
  // Generous deadline: a no_timeout result proves the notify landed. (A
  // spurious wakeup would also return no_timeout — acceptable: the test
  // asserts liveness, not uniqueness.)
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::no_timeout);
  notifier.join();
}

TEST(SharedMutexTest, ReadersRunConcurrently) {
  SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&]() {
      SharedLock lock(mu);
      const int inside = readers_inside.fetch_add(1) + 1;
      int expected = peak.load();
      while (inside > expected &&
             !peak.compare_exchange_weak(expected, inside)) {
      }
      // Hold the shared lock long enough for the others to pile in.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers_inside.fetch_sub(1);
    });
  }
  for (auto& th : readers) th.join();
  // With a 20ms shared hold, at least two of four readers overlap unless
  // the lock serialized them.
  EXPECT_GE(peak.load(), 2);
}

TEST(SharedMutexTest, WriterExcludesReaders) {
  SharedMutex mu;
  int value = 0;
  {
    WriterLock lock(mu);
    value = 1;
  }
  std::vector<std::thread> threads;
  std::atomic<int> sum{0};
  threads.emplace_back([&]() {
    WriterLock lock(mu);
    ++value;
  });
  threads.emplace_back([&]() {
    SharedLock lock(mu);
    sum += value;  // sees 1 or 2, never a torn write
  });
  for (auto& th : threads) th.join();
  const int observed = sum.load();
  EXPECT_TRUE(observed == 1 || observed == 2);
  EXPECT_EQ(value, 2);
}

TEST(SharedMutexTest, SharedLockUnlockRelockWindow) {
  // The router's park pattern: drop the shared routing lock, wait, retake.
  SharedMutex mu;
  SharedLock lock(mu);
  lock.Unlock();
  {
    WriterLock writer(mu);  // must not deadlock: the reader released
  }
  lock.Lock();
}

// ---------------------------------------------------------------------------
// Negative-compile cases: every block below MUST produce a -Wthread-safety
// error under clang with QCORE_TSA_NEGATIVE_COMPILE defined. They document
// exactly what the analysis catches; keeping them in-tree keeps the macro
// plumbing honest (if the annotations ever stop expanding under clang,
// the negative-compile CI step fails by succeeding).
#ifdef QCORE_TSA_NEGATIVE_COMPILE

class NegativeCompileCases {
 public:
  // Reading a guarded field without the lock.
  int ReadUnlocked() { return guarded_; }  // expected-error: requires mu_

  // Writing a guarded field under the WRONG lock.
  void WrongLock() {
    MutexLock lock(other_mu_);
    guarded_ = 1;  // expected-error: requires mu_, holds other_mu_
  }

  // Calling a REQUIRES function without holding the lock.
  void CallWithoutLock() { MustHold(); }  // expected-error

  // Forgetting to release a manually acquired lock.
  void LeakLock() { mu_.Lock(); }  // expected-error: still held at exit

  // Double-acquiring a non-reentrant capability.
  void DoubleLock() {
    MutexLock a(mu_);
    MutexLock b(mu_);  // expected-error: acquiring mu_ already held
  }

 private:
  void MustHold() QCORE_REQUIRES(mu_) { guarded_ = 2; }

  Mutex mu_;
  Mutex other_mu_;
  int guarded_ QCORE_GUARDED_BY(mu_) = 0;
};

#endif  // QCORE_TSA_NEGATIVE_COMPILE

}  // namespace
}  // namespace qcore
