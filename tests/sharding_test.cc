// Sharding determinism suite: ShardedFleetServer must be a pure routing
// layer — results (inference labels, per-batch calibration stats, final
// model codes, published snapshot versions and bytes) are bit-identical to
// a single unsharded FleetServer for any shard count, and remain
// bit-identical across live rebalancing (MoveDevice / Rebalance) in the
// middle of a stream, with and without inference batching. Also pins the
// operational properties of the router: ring-driven placement, metrics
// rollup across shard retirement, and the barrier-snapshot protocol of a
// migration.
#include <gtest/gtest.h>

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "serving/backend.h"
#include "serving/hash_ring.h"
#include "serving/router.h"
#include "serving/server.h"
#include "testing/fault_injector.h"

namespace qcore {
namespace {

struct FleetFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  Dataset qcore;
  std::unique_ptr<QuantizedModel> base;  // deployed edge form
  std::unique_ptr<BitFlipNet> bf;
  std::vector<Dataset> batches;
  std::vector<Dataset> slices;
  std::vector<Tensor> probes;  // distinct single-row inference inputs
};

FleetFixture* GetFixture() {
  static FleetFixture* fixture = []() {
    auto* f = new FleetFixture();
    f->spec = HarSpec::Usc();
    f->spec.num_classes = 5;
    f->spec.channels = 3;
    f->spec.length = 24;
    f->spec.train_per_class = 8;
    f->spec.test_per_class = 4;
    f->source = MakeHarDomain(f->spec, 0);
    f->target = MakeHarDomain(f->spec, 1);

    Rng rng(20260101);
    auto model = MakeOmniScaleCnn(f->spec.channels, f->spec.num_classes,
                                  &rng);
    QCoreBuildOptions build;
    build.size = 15;
    build.train.epochs = 8;
    build.train.sgd.lr = 0.03f;
    auto built = BuildQCore(model.get(), f->source.train, build, &rng);
    f->qcore = built.qcore;

    f->base = std::make_unique<QuantizedModel>(*model, 4);
    BitFlipTrainOptions bft;
    bft.ste.epochs = 8;
    bft.ste.batch_size = 16;
    bft.augment_episodes = 1;
    f->bf = std::make_unique<BitFlipNet>(
        TrainBitFlipNet(f->base.get(), f->qcore, bft, &rng));
    f->base->DropShadows();

    Rng split_rng(909);
    f->batches = SplitIntoStreamBatches(f->target.train, 3, &split_rng);
    f->slices = SplitIntoStreamBatches(f->target.test, 3, &split_rng);
    for (int i = 0; i < 6; ++i) {
      f->probes.push_back(f->target.test.x().GatherRows(
          {i % static_cast<int>(f->target.test.size())}));
    }
    return f;
  }();
  return fixture;
}

ContinualOptions FastContinualOptions() {
  ContinualOptions opts;
  opts.iterations = 1;
  return opts;
}

FleetServerOptions ShardOptions(int threads, bool batching) {
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual = FastContinualOptions();
  opts.seed = 0x5EED;
  opts.enable_batching = batching;
  opts.batching.max_batch = 3;
  opts.batching.max_delay_us = 100.0;
  return opts;
}

const std::vector<std::string>& Devices() {
  static const std::vector<std::string> devices = {"s0", "s1", "s2", "s3",
                                                   "s4"};
  return devices;
}

// Everything a run produces; two runs are interchangeable iff == holds.
struct StreamOutcome {
  std::vector<std::vector<std::pair<float, int>>> stats;   // per device
  std::vector<std::vector<std::vector<int>>> predictions;  // per device
  std::vector<std::vector<std::vector<int32_t>>> codes;    // per device
  std::vector<uint64_t> versions;                          // final publishes
  std::vector<std::vector<uint8_t>> bytes;                 // their blobs

  bool operator==(const StreamOutcome& o) const {
    return stats == o.stats && predictions == o.predictions &&
           codes == o.codes && versions == o.versions && bytes == o.bytes;
  }
};

// Fixed interleaved workload: per stream batch and device, two probe
// inferences, one calibration, one trailing probe. `mid_action` (optional)
// runs between stream batches 1 and 2, with futures still in flight —
// that is where the rebalance tests inject MoveDevice/Rebalance.
StreamOutcome DriveStream(FleetBackend* server,
                          const std::function<void()>& mid_action = nullptr) {
  FleetFixture* f = GetFixture();
  const auto& devices = Devices();
  for (const auto& d : devices) server->RegisterDevice(d, f->qcore);

  std::vector<std::vector<std::future<BatchStats>>> cal(devices.size());
  std::vector<std::vector<std::future<InferenceResult>>> inf(devices.size());
  for (size_t b = 0; b < f->batches.size(); ++b) {
    if (b == 2 && mid_action) mid_action();
    for (size_t d = 0; d < devices.size(); ++d) {
      for (size_t p = 0; p < 2; ++p) {
        inf[d].push_back(server->SubmitInference(
            devices[d], f->probes[(b + d + p) % f->probes.size()]));
      }
      cal[d].push_back(
          server->SubmitCalibration(devices[d], f->batches[b], f->slices[b]));
      inf[d].push_back(server->SubmitInference(
          devices[d], f->probes[(b + d) % f->probes.size()]));
    }
  }
  server->Drain();

  StreamOutcome out;
  // Publication order is forced (sequential .get()) so version numbers are
  // comparable across runs.
  for (const auto& d : devices) {
    out.versions.push_back(server->PublishSnapshot(d).get());
    out.bytes.push_back(server->snapshots().LatestFor(d)->bytes);
  }
  for (size_t d = 0; d < devices.size(); ++d) {
    out.stats.emplace_back();
    for (auto& fu : cal[d]) {
      const BatchStats s = fu.get();
      out.stats.back().emplace_back(s.accuracy, s.qcore_changed);
    }
    out.predictions.emplace_back();
    for (auto& fu : inf[d]) {
      out.predictions.back().push_back(fu.get().predictions);
    }
    server->WithSessionQuiesced(devices[d], [&](CalibrationSession& s) {
      out.codes.push_back(s.model()->AllCodes());
    });
  }
  return out;
}

StreamOutcome RunSharded(int num_shards, int threads, bool batching,
                         std::function<void(ShardedFleetServer&)> mid =
                             nullptr) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions opts;
  opts.num_shards = num_shards;
  opts.shard = ShardOptions(threads, batching);
  ShardedFleetServer server(*f->base, *f->bf, opts);
  if (mid) {
    return DriveStream(&server, [&]() { mid(server); });
  }
  return DriveStream(&server);
}

StreamOutcome RunUnsharded(int threads, bool batching) {
  FleetFixture* f = GetFixture();
  FleetServer server(*f->base, *f->bf, ShardOptions(threads, batching));
  return DriveStream(&server);
}

// Equality minus version numbers: a rebalanced run's migrations consume
// registry versions for their barrier snapshots, so its explicit publish
// versions are offset from a never-rebalanced run's — everything else
// (stats, labels, codes, published model bytes) must still match exactly.
// Version determinism for rebalanced runs is pinned separately below.
void ExpectSameResults(const StreamOutcome& got, const StreamOutcome& want,
                       const std::string& label) {
  EXPECT_EQ(got.stats, want.stats) << label;
  EXPECT_EQ(got.predictions, want.predictions) << label;
  EXPECT_EQ(got.codes, want.codes) << label;
  EXPECT_EQ(got.bytes, want.bytes) << label;
}

// ------------------------------------------------- shard-count bit-identity

TEST(ShardingDeterminismTest, ShardCounts124MatchUnshardedBitIdentically) {
  const StreamOutcome reference = RunUnsharded(/*threads=*/0,
                                               /*batching=*/false);
  ASSERT_FALSE(reference.codes.empty());
  for (int shards : {1, 2, 4}) {
    const StreamOutcome sharded =
        RunSharded(shards, /*threads=*/2, /*batching=*/false);
    EXPECT_TRUE(sharded == reference) << "shards=" << shards;
  }
  // Per-shard batchers on top must change nothing either.
  for (int shards : {1, 2, 4}) {
    const StreamOutcome batched =
        RunSharded(shards, /*threads=*/2, /*batching=*/true);
    EXPECT_TRUE(batched == reference) << "batched shards=" << shards;
  }
}

// ------------------------------------------------------- live rebalancing

TEST(ShardingDeterminismTest, MoveDeviceMidStreamIsBitIdentical) {
  const StreamOutcome reference = RunUnsharded(0, false);
  FleetFixture* f = GetFixture();
  for (bool batching : {false, true}) {
    ShardedFleetServerOptions opts;
    opts.num_shards = 2;
    opts.shard = ShardOptions(/*threads=*/2, batching);
    ShardedFleetServer server(*f->base, *f->bf, opts);
    uint64_t barrier_version = 0;
    int source_shard = -1;
    const StreamOutcome moved = DriveStream(&server, [&]() {
      // Mid-stream, with futures in flight (and, when batching, possibly a
      // pending group — the barrier must flush it): move s0 to the other
      // shard.
      source_shard = server.ShardOf("s0");
      barrier_version = server.MoveDevice("s0", 1 - source_shard);
    });
    ExpectSameResults(moved, reference,
                      batching ? "move batched" : "move unbatched");
    EXPECT_EQ(server.ShardOf("s0"), 1 - source_shard);
    // The barrier snapshot is a real registry version capturing the
    // mid-stream model: published by s0 after its first two calibrations.
    auto snap = server.snapshots().Get(barrier_version);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->device_id, "s0");
    EXPECT_EQ(snap->batches_seen, 2u);
    auto restored = f->base->Clone();
    ASSERT_TRUE(SnapshotRegistry::RestoreInto(*snap, restored.get()).ok());
    EXPECT_NE(restored->AllCodes(), f->base->AllCodes());
  }
}

TEST(ShardingDeterminismTest, RebalanceMidStreamIsBitIdentical) {
  const StreamOutcome reference = RunUnsharded(0, false);
  // Grow 1 -> 3 mid-stream: every device that the 3-shard ring places off
  // shard 0 migrates, streams keep flowing afterwards.
  const auto grow = [](ShardedFleetServer& s) { s.Rebalance(3); };
  ExpectSameResults(RunSharded(1, 2, /*batching=*/false, grow), reference,
                    "grow 1->3");
  ExpectSameResults(RunSharded(1, 2, /*batching=*/true, grow), reference,
                    "grow 1->3 batched");

  // Shrink 4 -> 2 mid-stream: shards 2 and 3 hand every session off and
  // retire.
  const auto shrink = [](ShardedFleetServer& s) {
    s.Rebalance(2);
    EXPECT_EQ(s.num_shards(), 2);
  };
  ExpectSameResults(RunSharded(4, 2, /*batching=*/false, shrink), reference,
                    "shrink 4->2");
  ExpectSameResults(RunSharded(4, 2, /*batching=*/true, shrink), reference,
                    "shrink 4->2 batched");
}

// Snapshot versions across rebalanced runs: a migration consumes registry
// versions for its barrier snapshots, so a rebalanced run's version
// numbers differ from a never-rebalanced one — but they must be fully
// deterministic: identical across replays and identical whether or not
// batching is enabled (the barrier count depends only on the schedule).
TEST(ShardingDeterminismTest, RebalancedSnapshotVersionsAreDeterministic) {
  const auto grow = [](ShardedFleetServer& s) { s.Rebalance(3); };
  const StreamOutcome a = RunSharded(1, 2, /*batching=*/false, grow);
  const StreamOutcome b = RunSharded(1, 2, /*batching=*/false, grow);
  EXPECT_TRUE(a == b) << "replay";
  const StreamOutcome c = RunSharded(1, 2, /*batching=*/true, grow);
  EXPECT_EQ(a.versions, c.versions) << "batching changed version assignment";
  EXPECT_EQ(a.bytes, c.bytes);
}

// ------------------------------------------------------------- chaos soak

// Randomized chaos soak: several seeded fault schedules, each arming every
// latency-only fault family (device RTT spikes, batcher flusher stalls,
// barrier delays) with probabilities and delays drawn from the seed, over
// a 4-shard batched fleet that rebalances twice mid-stream (grow 4->5,
// shrink 5->3). Latency faults stretch time but must never change WHAT is
// computed, so every schedule's outcome — stats, labels, codes, snapshot
// versions and bytes — must be bit-for-bit the fault-free run's.
TEST(ShardingChaosTest, SeededLatencyFaultSchedulesStayBitIdentical) {
  const auto mid = [](ShardedFleetServer& s) {
    s.Rebalance(5);
    s.Rebalance(3);
  };
  const StreamOutcome reference =
      RunSharded(4, /*threads=*/2, /*batching=*/true, mid);
  ASSERT_FALSE(reference.codes.empty());

  for (const uint64_t seed : {0xA11CEull, 0xB0Bull, 0xC4A05ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    // The schedule itself is derived from the seed, so each iteration
    // exercises a different (but replayable) interleaving of faults.
    Rng plan(seed);
    FaultInjector injector(seed);
    FaultScript rtt;
    rtt.sticky = true;
    rtt.probability = 0.25 + 0.5 * plan.NextDouble();
    rtt.arg = 100 + plan.NextUint64(1200);  // microseconds
    injector.Arm(FaultPoint::kDeviceRttSpike, rtt);
    FaultScript stall;
    stall.sticky = true;
    stall.probability = 0.2;
    stall.arg = 500 + plan.NextUint64(2500);
    injector.Arm(FaultPoint::kBatcherFlusherStall, stall);
    FaultScript barrier;
    barrier.sticky = true;
    barrier.probability = 0.3 + 0.6 * plan.NextDouble();
    barrier.arg = 50 + plan.NextUint64(500);
    injector.Arm(FaultPoint::kBarrierDelay, barrier);

    injector.Install();
    const StreamOutcome faulted =
        RunSharded(4, /*threads=*/2, /*batching=*/true, mid);
    FaultInjector::Uninstall();

    EXPECT_TRUE(faulted == reference);
    // The soak must actually have injected something, or it proves nothing.
    EXPECT_GT(injector.total_fired(), 0u);
    EXPECT_GT(injector.hits(FaultPoint::kDeviceRttSpike), 0u);
  }
}

// --------------------------------------------------- router operationality

TEST(ShardedFleetServerTest, PlacementFollowsTheRingAndCoversShards) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions opts;
  opts.num_shards = 4;
  opts.shard = ShardOptions(/*threads=*/1, /*batching=*/false);
  ShardedFleetServer server(*f->base, *f->bf, opts);
  HashRing ring(4);
  const int kDevices = 64;
  for (int i = 0; i < kDevices; ++i) {
    const std::string id = "device-" + std::to_string(i);
    server.RegisterDevice(id, f->qcore);
    EXPECT_EQ(server.ShardOf(id), ring.ShardFor(id)) << id;
    EXPECT_TRUE(server.HasDevice(id));
  }
  EXPECT_EQ(server.num_sessions(), kDevices);
  int total = 0;
  for (int s = 0; s < server.num_shards(); ++s) {
    const int on_shard = server.SessionCountOnShard(s);
    EXPECT_GT(on_shard, 0) << "shard " << s << " owns no sessions";
    total += on_shard;
  }
  EXPECT_EQ(total, kDevices);
}

// MoveDevice records a persistent placement pin: Rebalance keeps the device
// on the pinned shard instead of re-deriving from the ring, ClearPin
// restores ring placement, and a pin to a retired shard is dropped —
// closing the old "pins last only until the next Rebalance" caveat. Results
// stay bit-identical throughout (migration is still the barrier-snapshot
// protocol, wherever the device lands).
TEST(ShardedFleetServerTest, PlacementPinSurvivesRebalance) {
  const StreamOutcome reference = RunUnsharded(0, false);
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions opts;
  opts.num_shards = 2;
  opts.shard = ShardOptions(/*threads=*/2, /*batching=*/false);
  ShardedFleetServer server(*f->base, *f->bf, opts);
  // Pin s0 to a shard the 3-shard ring would NOT choose, so the pin (not
  // the ring) demonstrably decides placement after the rebalance.
  const int ring3_home = HashRing(3).ShardFor("s0");
  const int pin_target = ring3_home == 0 ? 1 : 0;
  const StreamOutcome moved = DriveStream(&server, [&]() {
    server.MoveDevice("s0", pin_target);
    server.Rebalance(3);
  });
  ExpectSameResults(moved, reference, "pinned move + rebalance");
  EXPECT_EQ(server.ShardOf("s0"), pin_target);
  ASSERT_NE(server.ShardOf("s0"), ring3_home);

  // A second rebalance still honors the pin...
  server.Rebalance(3);
  EXPECT_EQ(server.ShardOf("s0"), pin_target);
  // ...until ClearPin, after which placement is the ring's again.
  server.ClearPin("s0");
  EXPECT_EQ(server.ShardOf("s0"), pin_target);  // ClearPin itself moves nothing
  server.Rebalance(3);
  EXPECT_EQ(server.ShardOf("s0"), ring3_home);
  // The device kept serving through every placement change.
  server.SubmitInference("s0", f->probes[0]).get();
  server.Drain();
}

TEST(ShardedFleetServerTest, PinToRetiredShardIsDroppedOnShrink) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions opts;
  opts.num_shards = 4;
  opts.shard = ShardOptions(/*threads=*/1, /*batching=*/false);
  ShardedFleetServer server(*f->base, *f->bf, opts);
  const auto& devices = Devices();
  for (const auto& d : devices) server.RegisterDevice(d, f->qcore);
  server.MoveDevice("s1", 3);
  EXPECT_EQ(server.ShardOf("s1"), 3);

  // Shrinking away shard 3 drops the pin: the device rehomes by the
  // 2-shard ring like everyone else, and the retiring shard ends empty.
  server.Rebalance(2);
  EXPECT_EQ(server.num_shards(), 2);
  HashRing ring2(2);
  for (const auto& d : devices) {
    EXPECT_EQ(server.ShardOf(d), ring2.ShardFor(d)) << d;
  }
  // The dropped pin stays dropped: growing again follows the ring, not the
  // stale override.
  server.Rebalance(4);
  HashRing ring4(4);
  EXPECT_EQ(server.ShardOf("s1"), ring4.ShardFor("s1"));
  server.Drain();
}

TEST(ShardedFleetServerTest, RollupSurvivesShardRetirement) {
  FleetFixture* f = GetFixture();
  ShardedFleetServerOptions opts;
  opts.num_shards = 3;
  opts.shard = ShardOptions(/*threads=*/2, /*batching=*/false);
  ShardedFleetServer server(*f->base, *f->bf, opts);
  const auto& devices = Devices();
  for (const auto& d : devices) server.RegisterDevice(d, f->qcore);
  for (const auto& d : devices) {
    server.SubmitInference(d, f->probes[0]);
    server.SubmitCalibration(d, f->batches[0], f->slices[0]);
  }
  server.Drain();
  const uint64_t inferences = server.metrics().inference_requests();
  const uint64_t calibrations = server.metrics().calibration_batches();
  EXPECT_EQ(inferences, devices.size());
  EXPECT_EQ(calibrations, devices.size());

  // Retiring shards must fold their counters into the rollup, not lose
  // them; the migrations' barrier snapshots add to the snapshot counter
  // but never subtract elsewhere.
  server.Rebalance(1);
  EXPECT_EQ(server.num_shards(), 1);
  EXPECT_EQ(server.metrics().inference_requests(), inferences);
  EXPECT_EQ(server.metrics().calibration_batches(), calibrations);
  // Every device still serves from the surviving shard.
  for (const auto& d : devices) {
    EXPECT_EQ(server.ShardOf(d), 0);
    server.SubmitInference(d, f->probes[1]);
  }
  server.Drain();
  EXPECT_EQ(server.metrics().inference_requests(),
            inferences + devices.size());
}

}  // namespace
}  // namespace qcore
