// Unit + property tests for core/quant_miss: miss-transition counting,
// distribution building, stratified sampling, and the Eq. 3 information-loss
// bound.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/quant_miss.h"

namespace qcore {
namespace {

TEST(QuantMissTrackerTest, FirstObservationNeverCounts) {
  QuantMissTracker t(2, 1);
  t.Observe(0, 0, false);  // unknown -> incorrect: not a miss
  t.Observe(0, 1, true);
  EXPECT_EQ(t.misses(0)[0], 0);
  EXPECT_EQ(t.misses(0)[1], 0);
}

TEST(QuantMissTrackerTest, CountsCorrectToIncorrectTransitions) {
  QuantMissTracker t(1, 1);
  t.Observe(0, 0, true);
  t.Observe(0, 0, false);  // miss 1
  t.Observe(0, 0, false);  // no transition
  t.Observe(0, 0, true);
  t.Observe(0, 0, false);  // miss 2
  EXPECT_EQ(t.misses(0)[0], 2);
}

TEST(QuantMissTrackerTest, LevelsAreIndependent) {
  QuantMissTracker t(1, 2);
  t.Observe(0, 0, true);
  t.Observe(1, 0, true);
  t.Observe(0, 0, false);
  t.Observe(1, 0, true);
  EXPECT_EQ(t.misses(0)[0], 1);
  EXPECT_EQ(t.misses(1)[0], 0);
}

TEST(QuantMissTrackerTest, CombinedSumsLevels) {
  QuantMissTracker t(2, 2);
  for (int level = 0; level < 2; ++level) {
    t.Observe(level, 0, true);
    t.Observe(level, 0, false);
  }
  t.Observe(0, 1, true);
  t.Observe(0, 1, false);
  std::vector<int> combined = t.CombinedMisses();
  EXPECT_EQ(combined[0], 2);
  EXPECT_EQ(combined[1], 1);
}

TEST(QuantMissTrackerTest, DistributionHistogram) {
  std::vector<int> misses = {0, 0, 1, 3, 3, 3};
  std::vector<int64_t> hist = QuantMissTracker::Distribution(misses);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 2);
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[2], 0);
  EXPECT_EQ(hist[3], 3);
}

TEST(SampleByMissDistributionTest, ExactSizeUniqueIndices) {
  Rng rng(1);
  std::vector<int> misses(100);
  for (size_t i = 0; i < misses.size(); ++i) {
    misses[i] = static_cast<int>(i % 5);
  }
  std::vector<int> sel = SampleByMissDistribution(misses, 20, &rng);
  EXPECT_EQ(sel.size(), 20u);
  std::set<int> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (int i : sel) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
}

TEST(SampleByMissDistributionTest, ReplicatesDistributionProportions) {
  Rng rng(2);
  // 80 examples with 0 misses, 20 with 3 misses; 10% subset should hold
  // about 8 and 2 respectively.
  std::vector<int> misses(100, 0);
  for (int i = 80; i < 100; ++i) misses[static_cast<size_t>(i)] = 3;
  std::vector<int> sel = SampleByMissDistribution(misses, 10, &rng);
  int zeros = 0, threes = 0;
  for (int i : sel) {
    (misses[static_cast<size_t>(i)] == 0 ? zeros : threes)++;
  }
  EXPECT_EQ(zeros, 8);
  EXPECT_EQ(threes, 2);
}

TEST(SampleByMissDistributionTest, FullSizeSelectsEverything) {
  Rng rng(3);
  std::vector<int> misses = {0, 1, 2, 3, 4};
  std::vector<int> sel = SampleByMissDistribution(misses, 5, &rng);
  std::set<int> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 5u);
}

// Property sweep over subset sizes: the selected subset's mean miss count
// stays within the Eq. 7 bound of the full set's mean, and the per-bucket
// allocation is within one of proportional.
class SamplePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplePropertyTest, InfoLossBounded) {
  Rng rng(100 + GetParam());
  const int n = 200;
  const int size = 10 + GetParam() * 13;
  std::vector<int> misses(static_cast<size_t>(n));
  int max_miss = 0;
  for (auto& m : misses) {
    m = static_cast<int>(rng.NextUint64(9));
    max_miss = std::max(max_miss, m);
  }
  std::vector<int> sel = SampleByMissDistribution(misses, size, &rng);
  EXPECT_EQ(static_cast<int>(sel.size()), size);
  const double loss = MissInfoLoss(misses, sel);
  // Eq. 7: bounded by the maximum miss level K. In practice stratified
  // sampling does far better; assert both the hard and a practical bound.
  EXPECT_LE(loss, static_cast<double>(max_miss));
  EXPECT_LE(loss, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SamplePropertyTest, ::testing::Range(0, 10));

TEST(MissInfoLossTest, ZeroWhenSubsetMatchesMean) {
  std::vector<int> misses = {2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(MissInfoLoss(misses, {0, 2}), 0.0);
}

TEST(MissInfoLossTest, PaperWorkedExample) {
  // Table 2 of the paper: full set mean 3.05, subset mean 3 -> loss 0.05.
  std::vector<int> misses;
  // k=1: 2 examples, k=2: 3, k=3: 9, k=4: 4, k=5: 2.
  const int counts[] = {0, 2, 3, 9, 4, 2};
  for (int k = 1; k <= 5; ++k) {
    for (int i = 0; i < counts[k]; ++i) misses.push_back(k);
  }
  ASSERT_EQ(misses.size(), 20u);
  // The paper's subset: 1 example with k=2, 2 with k=3, 1 with k=4.
  std::vector<int> selected;
  int want2 = 1, want3 = 2, want4 = 1;
  for (size_t i = 0; i < misses.size(); ++i) {
    if (misses[i] == 2 && want2-- > 0) selected.push_back(static_cast<int>(i));
    if (misses[i] == 3 && want3-- > 0) selected.push_back(static_cast<int>(i));
    if (misses[i] == 4 && want4-- > 0) selected.push_back(static_cast<int>(i));
  }
  ASSERT_EQ(selected.size(), 4u);
  EXPECT_NEAR(MissInfoLoss(misses, selected), 0.05, 1e-9);
}

}  // namespace
}  // namespace qcore
