// Tests for baselines/: replay buffer reservoir behavior, the learners'
// update mechanics, coreset strategies, and DeepC's compression pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/camel.h"
#include "baselines/continual_learner.h"
#include "baselines/coresets.h"
#include "baselines/deepc.h"
#include "baselines/er_ace.h"
#include "baselines/replay_buffer.h"
#include "common/huffman.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "nn/loss.h"
#include "nn/training.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

Dataset NumberedDataset(int n, int num_classes = 4) {
  Tensor x({n, 2});
  std::vector<int> y(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    x.at(i, 0) = static_cast<float>(i);
    x.at(i, 1) = static_cast<float>(-i);
    y[static_cast<size_t>(i)] = i % num_classes;
  }
  return Dataset(std::move(x), std::move(y), num_classes);
}

TEST(ReplayBufferTest, FillsToCapacityThenStaysFixed) {
  Rng rng(1);
  ReplayBuffer buf(5, false, &rng);
  Dataset d = NumberedDataset(20);
  buf.AddBatch(d, nullptr);
  EXPECT_EQ(buf.size(), 5);
  EXPECT_EQ(buf.capacity(), 5);
}

TEST(ReplayBufferTest, ReservoirKeepsUniformishSample) {
  // Insert 0..999 into a 100-slot reservoir; the retained mean should be
  // near 500 (uniform over the stream), not near 50 (prefix) or 950
  // (suffix).
  Rng rng(2);
  ReplayBuffer buf(100, false, &rng);
  Dataset d = NumberedDataset(1000);
  buf.AddBatch(d, nullptr);
  Dataset all = buf.All(4, nullptr);
  double mean = 0.0;
  for (int i = 0; i < all.size(); ++i) mean += all.x().at(i, 0);
  mean /= all.size();
  EXPECT_GT(mean, 350.0);
  EXPECT_LT(mean, 650.0);
}

TEST(ReplayBufferTest, SampleWithoutReplacement) {
  Rng rng(3);
  ReplayBuffer buf(10, false, &rng);
  buf.AddBatch(NumberedDataset(10), nullptr);
  Dataset s = buf.Sample(10, 4, nullptr);
  std::set<float> uniq;
  for (int i = 0; i < s.size(); ++i) uniq.insert(s.x().at(i, 0));
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(ReplayBufferTest, LogitsTravelWithExamples) {
  Rng rng(4);
  ReplayBuffer buf(5, true, &rng);
  Dataset d = NumberedDataset(5);
  Tensor logits({5, 4});
  for (int i = 0; i < 5; ++i) logits.at(i, 0) = static_cast<float>(100 + i);
  buf.AddBatch(d, &logits);
  Tensor out_logits;
  Dataset all = buf.All(4, &out_logits);
  for (int i = 0; i < all.size(); ++i) {
    // logit row must match the example row: logit[0] == 100 + x[0].
    EXPECT_FLOAT_EQ(out_logits.at(i, 0), 100.0f + all.x().at(i, 0));
  }
}

TEST(AsymmetricCeGradTest, AbsentClassesGetZeroGradient) {
  Tensor logits = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 4, 3, 2, 1});
  std::vector<int> labels = {1, 2};  // classes 0 and 3 absent
  Tensor grad = AsymmetricCeGrad(logits, labels);
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(grad.at(i, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad.at(i, 3), 0.0f);
  }
  // Present-class gradients sum to zero per row (softmax minus onehot).
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(grad.at(i, 1) + grad.at(i, 2), 0.0f, 1e-6f);
  }
}

TEST(AsymmetricCeGradTest, MatchesFullCeWhenAllClassesPresent) {
  Rng rng(5);
  Tensor logits = Tensor::Randn({4, 3}, &rng);
  std::vector<int> labels = {0, 1, 2, 1};
  Tensor asym = AsymmetricCeGrad(logits, labels);
  SoftmaxCrossEntropy ce;
  ce.Forward(logits, labels);
  Tensor full = ce.Backward();
  for (int64_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(asym[i], full[i], 1e-5f);
  }
}

struct LearnerFixture {
  HarSpec spec;
  HarDomain source;
  HarDomain target;
  std::unique_ptr<Sequential> model;
  Rng rng{99};

  LearnerFixture() {
    spec = HarSpec::Usc();
    spec.num_classes = 5;
    spec.channels = 3;
    spec.length = 24;
    spec.train_per_class = 8;
    spec.test_per_class = 4;
    source = MakeHarDomain(spec, 0);
    target = MakeHarDomain(spec, 1);
    model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
    TrainOptions topt;
    topt.epochs = 8;
    topt.sgd.lr = 0.02f;
    TrainClassifier(model.get(), source.train.x(), source.train.labels(),
                    topt, &rng);
  }
};

TEST(LearnersTest, EveryBaselineRunsAndMutatesCodes) {
  LearnerFixture f;
  LearnerOptions opts;
  opts.epochs = 8;
  opts.sgd.lr = 0.05f;  // large enough to survive edge re-quantization
  Dataset batch = SplitIntoStreamBatches(f.target.train, 4, &f.rng)[0];
  for (const auto& name : BaselineNames()) {
    QuantizedModel qm(*f.model, 4);
    std::vector<int32_t> before;
    for (int t = 0; t < qm.num_quantized(); ++t) {
      before.insert(before.end(), qm.quantized(t).codes.begin(),
                    qm.quantized(t).codes.end());
    }
    auto learner = MakeLearner(name, &qm, opts, &f.rng);
    EXPECT_EQ(learner->name(), name);
    learner->ObserveBatch(batch);
    std::vector<int32_t> after;
    for (int t = 0; t < qm.num_quantized(); ++t) {
      after.insert(after.end(), qm.quantized(t).codes.begin(),
                   qm.quantized(t).codes.end());
    }
    EXPECT_NE(before, after) << name << " did not update any code";
    const float acc = learner->Evaluate(f.target.test);
    EXPECT_GE(acc, 0.0f);
    EXPECT_LE(acc, 1.0f);
  }
}

TEST(LearnersTest, ErReducesLossOnStreamData) {
  LearnerFixture f;
  QuantizedModel qm(*f.model, 4);
  LearnerOptions opts;
  opts.epochs = 25;
  opts.sgd.lr = 0.05f;
  auto learner = MakeLearner("ER", &qm, opts, &f.rng);
  SoftmaxCrossEntropy ce;
  Tensor logits0 = qm.model()->Forward(f.target.train.x(), false);
  const float loss_before = ce.Forward(logits0, f.target.train.labels());
  auto batches = SplitIntoStreamBatches(f.target.train, 4, &f.rng);
  for (const auto& b : batches) learner->ObserveBatch(b);
  Tensor logits1 = qm.model()->Forward(f.target.train.x(), false);
  const float loss_after = ce.Forward(logits1, f.target.train.labels());
  // Even with edge re-quantization rounding most updates away, BP on the
  // stream data must make some progress on that data.
  EXPECT_LT(loss_after, loss_before);
}

TEST(DeepCTest, PrunesRequestedFraction) {
  LearnerFixture f;
  QuantizedModel qm(*f.model, 4);
  LearnerOptions opts;
  DeepCLearner deepc(&qm, opts, &f.rng, 0.4f);
  EXPECT_NEAR(deepc.pruned_fraction(), 0.4f, 0.02f);
  // Pruned weights are exactly zero.
  int64_t zeros = 0, total = 0;
  for (int t = 0; t < qm.num_quantized(); ++t) {
    for (int32_t c : qm.quantized(t).codes) {
      zeros += c == 0 ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GE(static_cast<float>(zeros) / static_cast<float>(total), 0.4f);
}

TEST(DeepCTest, HuffmanPayloadBeatsFixedWidth) {
  LearnerFixture f;
  QuantizedModel qm(*f.model, 8);
  LearnerOptions opts;
  DeepCLearner deepc(&qm, opts, &f.rng, 0.5f);
  // Half the codes are zero, so the Huffman payload must beat 8 bits/code.
  // (CompressedSizeBits additionally charges the code table, which dominates
  // only because these test models are tiny.)
  uint64_t payload = 0, codes = 0;
  for (int t = 0; t < qm.num_quantized(); ++t) {
    auto enc = HuffmanCoder::Encode(qm.quantized(t).codes);
    ASSERT_TRUE(enc.ok());
    payload += enc.value().PayloadBits();
    codes += qm.quantized(t).codes.size();
  }
  EXPECT_LT(payload, codes * 8);
  EXPECT_GT(deepc.CompressedSizeBits(), 0u);
}

TEST(DeepCTest, MaskSurvivesTraining) {
  LearnerFixture f;
  QuantizedModel qm(*f.model, 4);
  LearnerOptions opts;
  opts.epochs = 4;
  opts.sgd.lr = 0.05f;
  DeepCLearner deepc(&qm, opts, &f.rng, 0.3f);
  Dataset batch = SplitIntoStreamBatches(f.target.train, 4, &f.rng)[0];
  deepc.ObserveBatch(batch);
  int64_t zeros = 0, total = 0;
  for (int t = 0; t < qm.num_quantized(); ++t) {
    for (int32_t c : qm.quantized(t).codes) {
      zeros += c == 0 ? 1 : 0;
      ++total;
    }
  }
  // The constructor prunes floor(0.3 * count) weights, which can land just
  // under 30%.
  EXPECT_GE(static_cast<float>(zeros) / static_cast<float>(total), 0.29f);
}

TEST(CamelTest, MaintainsBoundedSubset) {
  LearnerFixture f;
  QuantizedModel qm(*f.model, 4);
  LearnerOptions opts;
  opts.epochs = 2;
  opts.buffer_capacity = 16;
  CamelLearner camel(&qm, opts, &f.rng);
  auto batches = SplitIntoStreamBatches(f.target.train, 4, &f.rng);
  for (const auto& b : batches) {
    camel.ObserveBatch(b);
    EXPECT_LE(camel.subset().size(), 8);  // capacity / 2
  }
}

// Coreset strategies: valid unique indices of the requested size.
class CoresetStrategyTest : public ::testing::TestWithParam<int> {};

TEST_P(CoresetStrategyTest, ReturnsValidUniqueIndices) {
  LearnerFixture f;
  const int size = 12;
  const Dataset& d = f.source.train;
  std::vector<int> sel;
  Rng rng(17);
  switch (GetParam()) {
    case 0:
      sel = SelectMaxEntropy(f.model.get(), d, size);
      break;
    case 1:
      sel = SelectLeastConfidence(f.model.get(), d, size);
      break;
    case 2: {
      std::vector<int> misses(static_cast<size_t>(d.size()));
      for (size_t i = 0; i < misses.size(); ++i) {
        misses[i] = static_cast<int>(i % 6);
      }
      sel = SelectNormalFit(misses, size, &rng);
      break;
    }
    case 3:
      sel = SelectKMeans(d, size, &rng);
      break;
    case 4:
      sel = SelectGradMatch(f.model.get(), d, size);
      break;
    case 5:
      sel = SelectCraig(f.model.get(), d, size);
      break;
  }
  EXPECT_EQ(static_cast<int>(sel.size()), size);
  std::set<int> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), sel.size());
  for (int i : sel) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, d.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, CoresetStrategyTest,
                         ::testing::Range(0, 6));

TEST(CoresetsTest, KCenterGreedySpreadsOut) {
  // Points on a line: greedy k-center must pick points spanning the range.
  Rng rng(18);
  const int n = 50;
  Tensor rows({n, 1});
  for (int i = 0; i < n; ++i) rows.at(i, 0) = static_cast<float>(i);
  std::vector<int> sel = KCenterGreedy(rows, 3, &rng);
  float mn = 1e9f, mx = -1e9f;
  for (int i : sel) {
    mn = std::min(mn, rows.at(i, 0));
    mx = std::max(mx, rows.at(i, 0));
  }
  EXPECT_LE(mn, 10.0f);
  EXPECT_GE(mx, 39.0f);
}

TEST(CoresetsTest, GradMatchTracksMeanGradientBetterThanWorstCase) {
  LearnerFixture f;
  const Dataset& d = f.source.train;
  Tensor grads = LastLayerGradients(f.model.get(), d);
  const int64_t k = grads.dim(1);
  auto subset_residual = [&](const std::vector<int>& sel) {
    std::vector<double> target(static_cast<size_t>(k), 0.0);
    for (int i = 0; i < d.size(); ++i) {
      for (int64_t j = 0; j < k; ++j) {
        target[static_cast<size_t>(j)] += grads.at(i, j);
      }
    }
    for (auto& t : target) t /= d.size();
    std::vector<double> mean(static_cast<size_t>(k), 0.0);
    for (int i : sel) {
      for (int64_t j = 0; j < k; ++j) {
        mean[static_cast<size_t>(j)] += grads.at(i, j);
      }
    }
    double res = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      const double m = mean[static_cast<size_t>(j)] / sel.size();
      res += (m - target[static_cast<size_t>(j)]) *
             (m - target[static_cast<size_t>(j)]);
    }
    return res;
  };
  std::vector<int> gm = SelectGradMatch(f.model.get(), d, 10);
  // Compare against the average of several random subsets.
  Rng rng(19);
  double random_res = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    random_res += subset_residual(rng.SampleWithoutReplacement(d.size(), 10));
  }
  random_res /= 5.0;
  EXPECT_LE(subset_residual(gm), random_res + 1e-9);
}

TEST(CoresetsTest, LastLayerGradientsRowsSumToZero) {
  LearnerFixture f;
  Tensor grads = LastLayerGradients(f.model.get(), f.source.train);
  for (int64_t i = 0; i < grads.dim(0); ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < grads.dim(1); ++j) sum += grads.at(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-4);
  }
}

}  // namespace
}  // namespace qcore
