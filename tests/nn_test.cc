// Unit tests for nn/: layer semantics, training loop, SGD, model IO,
// cloning, and BatchNorm eval/freeze behavior.
#include <gtest/gtest.h>

#include <cstdio>

#include "nn/batchnorm.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model_io.h"
#include "nn/sgd.h"
#include "nn/training.h"
#include "tensor/tensor_ops.h"

namespace qcore {
namespace {

TEST(DenseTest, KnownForward) {
  Rng rng(1);
  Dense layer(2, 2, &rng);
  // Overwrite with known weights: w = [[1,2],[3,4]], b = [0.5, -0.5].
  layer.Params()[0]->value = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  layer.Params()[1]->value = Tensor::FromVector({2}, {0.5f, -0.5f});
  Tensor x = Tensor::FromVector({1, 2}, {10, 20});
  Tensor y = layer.Forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 10 * 1 + 20 * 2 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 10 * 3 + 20 * 4 - 0.5f);
}

TEST(ReluTest, ClampsNegatives) {
  Relu layer;
  Tensor x = Tensor::FromVector({1, 4}, {-1, 0, 2, -3});
  Tensor y = layer.Forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Conv1dTest, IdentityKernelPreservesSignal) {
  Rng rng(2);
  Conv1d layer(1, 1, 3, 1, 1, &rng);
  // Kernel [0,1,0], bias 0 => identity with "same" padding.
  layer.Params()[0]->value = Tensor::FromVector({1, 1, 3}, {0, 1, 0});
  layer.Params()[1]->value = Tensor::Zeros({1});
  Tensor x = Tensor::FromVector({1, 1, 5}, {1, 2, 3, 4, 5});
  Tensor y = layer.Forward(x, false);
  ASSERT_EQ(y.dim(2), 5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv1dTest, OutputLengthFormula) {
  Rng rng(3);
  Conv1d layer(1, 1, 4, 2, 1, &rng);
  Tensor x({2, 1, 11});
  Tensor y = layer.Forward(x, false);
  EXPECT_EQ(y.dim(2), (11 + 2 - 4) / 2 + 1);
}

TEST(Conv2dTest, AveragingKernel) {
  Rng rng(4);
  Conv2d layer(1, 1, 2, 1, 0, &rng);
  layer.Params()[0]->value =
      Tensor::FromVector({1, 1, 2, 2}, {0.25f, 0.25f, 0.25f, 0.25f});
  layer.Params()[1]->value = Tensor::Zeros({1});
  Tensor x = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = layer.Forward(x, false);
  ASSERT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(MaxPoolTest, SelectsMaximum) {
  MaxPool1d pool(2, 2);
  Tensor x = Tensor::FromVector({1, 1, 6}, {1, 5, 2, 2, 9, 0});
  Tensor y = pool.Forward(x, false);
  ASSERT_EQ(y.dim(2), 3);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 9.0f);
}

TEST(GlobalAvgPoolTest, Averages) {
  GlobalAvgPool1d gap;
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 2, 3, 10, 20, 30});
  Tensor y = gap.Forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 20.0f);
}

TEST(BatchNormTest, NormalizesTrainingBatch) {
  BatchNorm bn(2);
  Rng rng(5);
  Tensor x = Tensor::Randn({16, 2, 8}, &rng, 3.0f);
  Tensor y = bn.Forward(x, /*training=*/true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < 16; ++i) {
      for (int64_t t = 0; t < 8; ++t) mean += y.at(i, c, t);
    }
    mean /= 128.0;
    for (int64_t i = 0; i < 16; ++i) {
      for (int64_t t = 0; t < 8; ++t) {
        var += (y.at(i, c, t) - mean) * (y.at(i, c, t) - mean);
      }
    }
    var /= 128.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm bn(1);
  Rng rng(6);
  // Warm up running stats with many batches of N(5, 2^2).
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::Randn({32, 1, 4}, &rng, 2.0f);
    float* p = x.data();
    for (int64_t j = 0; j < x.size(); ++j) p[j] += 5.0f;
    (void)bn.Forward(x, /*training=*/true);
  }
  // A constant input at the running mean should map near 0 in eval mode.
  Tensor probe = Tensor::Full({1, 1, 4}, 5.0f);
  Tensor y = bn.Forward(probe, /*training=*/false);
  EXPECT_NEAR(y[0], 0.0f, 0.15f);
}

TEST(BatchNormTest, FrozenTrainingMatchesEval) {
  BatchNorm bn(3);
  Rng rng(7);
  (void)bn.Forward(Tensor::Randn({16, 3, 4}, &rng), /*training=*/true);
  bn.set_frozen(true);
  Tensor x = Tensor::Randn({4, 3, 4}, &rng);
  Tensor train_out = bn.Forward(x, /*training=*/true);
  Tensor eval_out = bn.Forward(x, /*training=*/false);
  for (int64_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(train_out[i], eval_out[i], 1e-5f);
  }
}

TEST(BatchNormTest, FrozenDoesNotUpdateRunningStats) {
  BatchNorm bn(2);
  Rng rng(8);
  (void)bn.Forward(Tensor::Randn({8, 2, 4}, &rng), /*training=*/true);
  const Tensor before = *bn.Buffers()[0];
  bn.set_frozen(true);
  (void)bn.Forward(Tensor::Randn({8, 2, 4}, &rng, 10.0f), /*training=*/true);
  const Tensor& after = *bn.Buffers()[0];
  for (int64_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(before[i], after[i]);
  }
}

TEST(SetBatchNormFrozenTest, WalksTree) {
  Rng rng(9);
  Sequential seq;
  seq.Add(std::make_unique<Conv1d>(1, 2, 3, 1, 1, &rng));
  auto inner = std::make_unique<Sequential>();
  inner->Add(std::make_unique<BatchNorm>(2));
  seq.Add(std::make_unique<Residual>(std::move(inner), nullptr));
  SetBatchNormFrozen(&seq, true);
  int frozen_count = 0;
  for (Layer* leaf : FlattenLeafLayers(&seq)) {
    if (auto* bn = dynamic_cast<BatchNorm*>(leaf)) {
      EXPECT_TRUE(bn->frozen());
      ++frozen_count;
    }
  }
  EXPECT_EQ(frozen_count, 1);
}

TEST(SgdTest, PlainStepMovesAgainstGradient) {
  Parameter p("w", Tensor::FromVector({2}, {1.0f, -1.0f}));
  p.grad = Tensor::FromVector({2}, {0.5f, -0.5f});
  Sgd sgd({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(p.value[1], -1.0f + 0.05f);
  // Gradients must be cleared.
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  Parameter p("w", Tensor::FromVector({1}, {0.0f}));
  Sgd sgd({.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f});
  p.grad = Tensor::FromVector({1}, {1.0f});
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);  // v = 1
  p.grad = Tensor::FromVector({1}, {1.0f});
  sgd.Step({&p});
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);  // v = 1.5
}

TEST(SgdTest, WeightDecayShrinks) {
  Parameter p("w", Tensor::FromVector({1}, {10.0f}));
  Sgd sgd({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  p.grad = Tensor::Zeros({1});
  sgd.Step({&p});
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(CloneTest, SequentialCloneMatchesOutputs) {
  Rng rng(10);
  Sequential seq;
  seq.Add(std::make_unique<Conv1d>(2, 3, 3, 1, 1, &rng));
  seq.Add(std::make_unique<BatchNorm>(3));
  seq.Add(std::make_unique<Relu>());
  seq.Add(std::make_unique<GlobalAvgPool1d>());
  seq.Add(std::make_unique<Dense>(3, 2, &rng));
  (void)seq.Forward(Tensor::Randn({8, 2, 6}, &rng), true);  // move BN stats

  std::unique_ptr<Layer> copy = seq.Clone();
  Tensor x = Tensor::Randn({3, 2, 6}, &rng);
  Tensor y1 = seq.Forward(x, false);
  Tensor y2 = copy->Forward(x, false);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);

  // Mutating the clone must not affect the original.
  copy->Params()[0]->value.Fill(0.0f);
  Tensor y3 = seq.Forward(x, false);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y3[i]);
}

TEST(CopyParamsTest, TransfersValuesAndBuffers) {
  Rng rng(11);
  Sequential a;
  a.Add(std::make_unique<Dense>(3, 2, &rng));
  a.Add(std::make_unique<BatchNorm>(2));
  Sequential b;
  b.Add(std::make_unique<Dense>(3, 2, &rng));
  b.Add(std::make_unique<BatchNorm>(2));
  (void)a.Forward(Tensor::Randn({16, 3}, &rng), true);  // distinct BN stats
  CopyParams(&b, a);
  Tensor x = Tensor::Randn({4, 3}, &rng);
  Tensor ya = a.Forward(x, false);
  Tensor yb = b.Forward(x, false);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(FlattenLeafLayersTest, DepthFirstOrder) {
  Rng rng(12);
  Sequential seq;
  seq.Add(std::make_unique<Dense>(2, 2, &rng));
  auto inner = std::make_unique<Sequential>();
  inner->Add(std::make_unique<Relu>());
  inner->Add(std::make_unique<Dense>(2, 2, &rng));
  seq.Add(std::move(inner));
  std::vector<Layer*> leaves = FlattenLeafLayers(&seq);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_NE(dynamic_cast<Dense*>(leaves[0]), nullptr);
  EXPECT_NE(dynamic_cast<Relu*>(leaves[1]), nullptr);
  EXPECT_NE(dynamic_cast<Dense*>(leaves[2]), nullptr);
}

TEST(TrainingTest, LearnsLinearlySeparableProblem) {
  Rng rng(13);
  // Two Gaussian blobs in 2-D.
  const int n = 200;
  Tensor x({n, 2});
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    x.at(i, 0) = static_cast<float>(rng.NextGaussian(cls ? 2.0 : -2.0, 0.5));
    x.at(i, 1) = static_cast<float>(rng.NextGaussian(cls ? -1.0 : 1.0, 0.5));
    y[static_cast<size_t>(i)] = cls;
  }
  Sequential model;
  model.Add(std::make_unique<Dense>(2, 8, &rng));
  model.Add(std::make_unique<Relu>());
  model.Add(std::make_unique<Dense>(8, 2, &rng));
  TrainOptions opts;
  opts.epochs = 20;
  opts.batch_size = 16;
  opts.sgd.lr = 0.05f;
  const float final_loss = TrainClassifier(&model, x, y, opts, &rng);
  EXPECT_LT(final_loss, 0.1f);
  EXPECT_GT(EvaluateAccuracy(&model, x, y), 0.98f);
}

TEST(TrainingTest, PredictChunkingConsistent) {
  Rng rng(14);
  Sequential model;
  model.Add(std::make_unique<Dense>(3, 4, &rng));
  Tensor x = Tensor::Randn({10, 3}, &rng);
  std::vector<int> big = Predict(&model, x, 256);
  std::vector<int> small = Predict(&model, x, 3);
  EXPECT_EQ(big, small);
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  Rng rng(15);
  Sequential model;
  model.Add(std::make_unique<Conv1d>(2, 3, 3, 1, 1, &rng));
  model.Add(std::make_unique<BatchNorm>(3));
  model.Add(std::make_unique<GlobalAvgPool1d>());
  model.Add(std::make_unique<Dense>(3, 2, &rng));
  (void)model.Forward(Tensor::Randn({8, 2, 6}, &rng), true);

  const std::string path = "/tmp/qcore_model_io_test.bin";
  ASSERT_TRUE(SaveModel(&model, path).ok());

  Rng rng2(999);
  Sequential other;
  other.Add(std::make_unique<Conv1d>(2, 3, 3, 1, 1, &rng2));
  other.Add(std::make_unique<BatchNorm>(3));
  other.Add(std::make_unique<GlobalAvgPool1d>());
  other.Add(std::make_unique<Dense>(3, 2, &rng2));
  ASSERT_TRUE(LoadModel(&other, path).ok());

  Tensor x = Tensor::Randn({4, 2, 6}, &rng);
  Tensor y1 = model.Forward(x, false);
  Tensor y2 = other.Forward(x, false);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  std::remove(path.c_str());
}

TEST(ModelIoTest, StructureMismatchRejected) {
  Rng rng(16);
  Sequential model;
  model.Add(std::make_unique<Dense>(3, 2, &rng));
  const std::string path = "/tmp/qcore_model_io_mismatch.bin";
  ASSERT_TRUE(SaveModel(&model, path).ok());
  Sequential other;
  other.Add(std::make_unique<Dense>(4, 2, &rng));  // different shape
  Status s = LoadModel(&other, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qcore
