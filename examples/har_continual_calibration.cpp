// Scenario: a wearable-device activity classifier (DSA-like, 19 activities)
// is trained on one subject and deployed — at several bit-widths — on a
// different subject. The example drives the library's components manually
// (instead of RunQCorePipeline) to show where each algorithm runs, and
// compares against the no-adaptation deployment.
//
// Build & run:  ./build/examples/har_continual_calibration
#include <cstdio>

#include "core/bitflip.h"
#include "core/continual.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "nn/training.h"
#include "quant/ste_calibrator.h"

using namespace qcore;

int main() {
  HarSpec spec = HarSpec::Dsa();
  HarDomain source = MakeHarDomain(spec, 0);
  HarDomain target = MakeHarDomain(spec, 2);
  std::printf("DSA-like HAR: %d classes, %d channels x %d steps; "
              "Subj. 1 -> Subj. 3\n",
              spec.num_classes, spec.channels, spec.length);

  // --- Server side: Algorithm 1 — train FP model, build the QCore. -------
  Rng rng(11);
  auto model = MakeInceptionTime(spec.channels, spec.num_classes, &rng);
  QCoreBuildOptions build_opts;
  build_opts.size = 30;
  build_opts.train.epochs = 15;
  build_opts.train.sgd.lr = 0.02f;
  QCoreBuildResult build = BuildQCore(model.get(), source.train, build_opts,
                                      &rng);
  std::printf("QCore built: %d examples, info loss %.4f\n",
              build.qcore.size(), build.info_loss);

  for (int bits : {2, 4, 8}) {
    // --- Server side: quantize + Algorithm 2 (initial calibration while
    //     training the bit-flipping network). --------------------------
    QuantizedModel qm(*model, bits);
    BitFlipTrainOptions bf_opts;
    bf_opts.ste.epochs = 30;
    bf_opts.ste.batch_size = 16;
    BitFlipNet bf = TrainBitFlipNet(&qm, build.qcore, bf_opts, &rng);

    // A frozen copy shows what deployment without continual calibration
    // would achieve on the shifted subject.
    std::unique_ptr<QuantizedModel> frozen = qm.Clone();

    // --- Edge side: drop FP masters, stream with Algorithms 3 + 4. ----
    qm.DropShadows();
    ContinualOptions copts;
    ContinualDriver driver(&qm, &bf, build.qcore, copts, &rng);
    auto batches = SplitIntoStreamBatches(target.train, 10, &rng);
    auto slices = SplitIntoStreamBatches(target.test, 10, &rng);
    auto stats = driver.RunStream(batches, slices);

    const float frozen_acc = EvaluateAccuracy(
        frozen->model(), target.test.x(), target.test.labels());
    std::printf(
        "%d-bit: frozen deployment %.3f -> continual calibration %.3f "
        "(%.3f s/batch, model size %.1f KiB)\n",
        bits, frozen_acc, AverageAccuracy(stats),
        stats[0].calibration_seconds,
        static_cast<double>(qm.SizeBits()) / 8.0 / 1024.0);
  }
  std::printf(
      "\nTakeaway: continual calibration recovers most of the accuracy the\n"
      "domain shift destroyed at 4 and 8 bits; at 2 bits only three weight\n"
      "levels exist, so calibration has very little room to work with (the\n"
      "paper's 2-bit columns are likewise the weakest).\n");
  return 0;
}
