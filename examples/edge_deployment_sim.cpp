// Scenario: full server/edge separation through serialization — the
// "deployment" story of Fig. 1(b) as two phases that share nothing but
// files:
//
//   Phase 1 (server): train, build QCore, quantize, calibrate, train the
//     bit-flipping network; publish the quantized model (integer codes +
//     scales) into a SnapshotRegistry and persist a registry delta
//     (ExportDelta — CRC-framed snapshot records) plus the QCore to disk.
//   Phase 2 (edge): import the delta into its own registry, warm-start the
//     model from the cohort-nearest snapshot (the server's publish), never
//     touching full precision, and run continual calibration on a streamed
//     domain.
//
// Build & run:  ./build/examples/edge_deployment_sim
#include <cstdio>

#include "common/serialize.h"
#include "core/bitflip.h"
#include "core/continual.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"
#include "nn/model_io.h"
#include "nn/training.h"
#include "serving/snapshot.h"

using namespace qcore;

namespace {

constexpr char kDeltaPath[] = "/tmp/qcore_edge_registry_delta.bin";
constexpr char kQCorePath[] = "/tmp/qcore_edge_subset.bin";
constexpr int kBits = 4;

// Datasets now serialize themselves (Dataset::SerializeTo/DeserializeFrom,
// shared with the serving layer's session migration); these wrappers just
// add the file framing.
Status SaveDataset(const Dataset& d, const std::string& path) {
  BinaryWriter w;
  d.SerializeTo(&w);
  return w.ToFile(path);
}

Result<Dataset> LoadDataset(const std::string& path) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  return Dataset::DeserializeFrom(&reader.value());
}

}  // namespace

int main() {
  HarSpec spec = HarSpec::Usc();

  // ------------------------- Phase 1: server -------------------------
  {
    std::printf("[server] training FP model + building QCore...\n");
    HarDomain source = MakeHarDomain(spec, 0);
    Rng rng(501);
    auto model = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
    QCoreBuildOptions build_opts;
    build_opts.size = 30;
    build_opts.train.epochs = 15;
    build_opts.train.sgd.lr = 0.02f;
    QCoreBuildResult build =
        BuildQCore(model.get(), source.train, build_opts, &rng);

    std::printf("[server] quantizing to %d bits + initial calibration...\n",
                kBits);
    QuantizedModel qm(*model, kBits);
    BitFlipTrainOptions bf_opts;
    bf_opts.ste.epochs = 25;
    bf_opts.ste.batch_size = 16;
    BitFlipNet bf = TrainBitFlipNet(&qm, build.qcore, bf_opts, &rng);
    (void)bf;  // the edge retrains its own copy below; see the note there

    // Publish into a registry and ship the registry itself: the delta file
    // is the same CRC-framed unit fleet servers exchange for cross-process
    // warm starts, so "deploy a model" and "replicate a registry" are one
    // mechanism.
    SnapshotRegistry registry;
    registry.Publish(qm, "server-rack-0", 0);
    BinaryWriter delta_writer;
    delta_writer.WriteBytes(registry.ExportDelta(0));
    Status s = delta_writer.ToFile(kDeltaPath);
    if (!s.ok()) {
      std::printf("save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    s = SaveDataset(build.qcore, kQCorePath);
    if (!s.ok()) {
      std::printf("save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[server] published v1 (%lld quantized codes, %.1f KiB) as "
                "a registry delta, plus a %d-example QCore\n",
                static_cast<long long>(qm.TotalCodeCount()),
                static_cast<double>(qm.SizeBits()) / 8.0 / 1024.0,
                build.qcore.size());
  }

  // -------------------------- Phase 2: edge --------------------------
  {
    std::printf("\n[edge] importing registry delta + QCore from disk...\n");
    Rng rng(777);
    auto arch = MakeOmniScaleCnn(spec.channels, spec.num_classes, &rng);
    QuantizedModel qm(*arch, kBits);
    auto delta_reader = BinaryReader::FromFile(kDeltaPath);
    if (!delta_reader.ok()) {
      std::printf("load failed: %s\n",
                  delta_reader.status().ToString().c_str());
      return 1;
    }
    auto delta = delta_reader.value().ReadBytes();
    if (!delta.ok()) {
      std::printf("load failed: %s\n", delta.status().ToString().c_str());
      return 1;
    }
    // Merge the server's registry and warm-start from the cohort-nearest
    // snapshot — this edge device never published, so that resolves to the
    // server's v1.
    SnapshotRegistry registry;
    auto imported = registry.ImportDelta(delta.value());
    if (!imported.ok()) {
      std::printf("import failed: %s\n",
                  imported.status().ToString().c_str());
      return 1;
    }
    auto snapshot = registry.NearestFor("edge-device-7");
    if (snapshot == nullptr) {
      std::printf("import failed: empty registry\n");
      return 1;
    }
    Status s = SnapshotRegistry::RestoreInto(*snapshot, &qm);
    if (!s.ok()) {
      std::printf("restore failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("[edge] warm-started from %s v%llu (%zu snapshot(s) "
                "imported)\n",
                snapshot->device_id.c_str(),
                static_cast<unsigned long long>(snapshot->version),
                imported.value());
    auto qcore = LoadDataset(kQCorePath);
    if (!qcore.ok()) {
      std::printf("load failed: %s\n", qcore.status().ToString().c_str());
      return 1;
    }

    // The bit-flipping network is tiny (~hundred parameters); this demo
    // retrains it on the loaded QCore rather than shipping it — its
    // supervision (Algorithm 2) needs nothing but the quantized model and
    // the QCore, both of which just came off disk.
    BitFlipTrainOptions bf_opts;
    bf_opts.ste.epochs = 25;
    bf_opts.ste.batch_size = 16;
    BitFlipNet bf = TrainBitFlipNet(&qm, qcore.value(), bf_opts, &rng);
    qm.DropShadows();  // from here on: integer codes only

    HarDomain target = MakeHarDomain(spec, 3);
    ContinualOptions copts;
    ContinualDriver driver(&qm, &bf, qcore.value(), copts, &rng);
    auto batches = SplitIntoStreamBatches(target.train, 10, &rng);
    auto slices = SplitIntoStreamBatches(target.test, 10, &rng);
    auto stats = driver.RunStream(batches, slices);
    std::printf("[edge] streamed 10 batches of Subj. 4: average accuracy "
                "%.3f, %.3f s per calibration, no back-propagation, no "
                "full-precision weights\n",
                AverageAccuracy(stats), stats[0].calibration_seconds);
  }

  std::remove(kDeltaPath);
  std::remove(kQCorePath);
  return 0;
}
