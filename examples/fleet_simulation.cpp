// Fleet simulation: one server-prepared quantized model deployed to a large
// fleet of simulated edge devices — HAR wearables (subject shift) and image
// sensors (visual-domain shift) — served through the FleetBackend
// interface. The large HAR cohort runs on a ShardedFleetServer (N
// consistent-hash shards, each with its own pool and batcher; mid-run it
// rebalances to a larger shard count live), the smaller image cohort on a
// single FleetServer — the same driving code serves both, which is the
// point of the API. Each device streams its own shifted domain,
// interleaving inference traffic with continual calibration (Algorithms
// 3+4); the servers snapshot calibrated models into copy-on-write
// registries and aggregate fleet-wide metrics (per-shard + rollup for the
// sharded cohort).
//
// Observability: after each phase (registration, serving, kill-and-restart)
// the fleet whiteboard is dumped — one row per shard and per device,
// maintained write-through by the serving layers — and the mid-stream
// rebalance window is captured through the TraceRing and written as
// chrome://tracing JSON to /tmp/qcore_fleet_rebalance_trace.json (open it
// at chrome://tracing or ui.perfetto.dev).
//
// Build & run:  ./build/fleet_simulation
// Environment:  QCORE_FLEET_DEVICES (default 200; HAR cohort, plus 1/4 as
//               many image devices), QCORE_FLEET_THREADS (default 4, per
//               shard for the HAR cohort), QCORE_FLEET_SHARDS (default 2),
//               QCORE_FAST=1 shrinks everything for a quick smoke run.
// Chaos:        --chaos-seed=N installs a deterministic FaultInjector and
//               arms a shard crash on the first migration of the
//               mid-stream rebalance. The run must SURVIVE it: the lost
//               device leaves the routing maps loudly, the rest of the
//               fleet keeps serving, and the chaos report at the end warm
//               re-registers the victim from its barrier snapshot and
//               verifies the restored codes bit-identically (exit 1 if
//               recovery fails). Same seed, same schedule, every run.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/bitflip.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "data/image_generator.h"
#include "models/model_zoo.h"
#include "obs/trace.h"
#include "obs/whiteboard.h"
#include "quant/ste_calibrator.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/snapshot_store.h"
#include "testing/fault_injector.h"

using namespace qcore;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::max(1, std::atoi(v)) : fallback;
}

bool Fast() {
  const char* v = std::getenv("QCORE_FAST");
  return v != nullptr && std::string(v) == "1";
}

// One prepared deployment: base model + bit-flip net + QCore, ready to be
// cloned into sessions.
struct Deployment {
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  Dataset qcore;
};

Deployment Prepare(Sequential* model, const Dataset& train, Rng* rng) {
  QCoreBuildOptions build;
  build.size = Fast() ? 12 : 20;
  build.train.epochs = Fast() ? 6 : 10;
  build.train.sgd.lr = 0.03f;
  QCoreBuildResult built = BuildQCore(model, train, build, rng);

  Deployment dep;
  dep.qcore = built.qcore;
  dep.base = std::make_unique<QuantizedModel>(*model, 4);
  BitFlipTrainOptions bft;
  bft.ste.epochs = Fast() ? 6 : 10;
  bft.ste.batch_size = 16;
  bft.augment_episodes = 1;
  dep.bf = std::make_unique<BitFlipNet>(
      TrainBitFlipNet(dep.base.get(), dep.qcore, bft, rng));
  dep.base->DropShadows();
  return dep;
}

}  // namespace

int main(int argc, char** argv) {
  const int har_devices = EnvInt("QCORE_FLEET_DEVICES", Fast() ? 24 : 200);
  const int img_devices = std::max(1, har_devices / 4);
  const int threads = EnvInt("QCORE_FLEET_THREADS", 4);
  const int shards = EnvInt("QCORE_FLEET_SHARDS", 2);
  const int stream_batches = 2;

  bool chaos = false;
  uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos-seed=";
    if (arg.rfind(prefix, 0) == 0) {
      chaos = true;
      chaos_seed = std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --chaos-seed=N)\n",
                   arg.c_str());
      return 2;
    }
  }

  std::printf("== Fleet simulation: %d HAR devices on %d shards (x%d "
              "threads) + %d image devices ==\n\n",
              har_devices, shards, threads, img_devices);

  // Chaos mode: a deterministic injector, armed so the FIRST migration of
  // the mid-stream rebalance loses its target shard. Everything below must
  // tolerate the loss; the report at the end proves the recovery.
  std::unique_ptr<FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<FaultInjector>(chaos_seed);
    FaultScript crash;
    crash.fire_on_hit = 1;  // one-shot on the rebalance's first migration
    injector->Arm(FaultPoint::kShardCrashDuringMigration, crash);
    injector->Install();
    std::printf("chaos: injector installed (seed %llu), shard crash armed "
                "for the mid-stream rebalance\n\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  // --- Server-side preparation: one deployment per modality. -------------
  HarSpec har_spec = HarSpec::Usc();
  har_spec.num_classes = Fast() ? 5 : 8;
  har_spec.channels = 3;
  har_spec.length = Fast() ? 24 : 32;
  har_spec.train_per_class = 8;
  har_spec.test_per_class = 4;
  HarDomain har_source = MakeHarDomain(har_spec, 0);

  ImageSpec img_spec = ImageSpec::Caltech10();
  img_spec.num_classes = Fast() ? 4 : 6;
  img_spec.height = 12;
  img_spec.width = 12;
  img_spec.train_per_class = 8;
  img_spec.test_per_class = 4;
  ImageDomain img_source = MakeImageDomain(img_spec, 0);

  Rng rng(0xF1EE7);
  std::printf("preparing HAR deployment (OmniScaleCNN, 4-bit)...\n");
  auto har_model =
      MakeOmniScaleCnn(har_spec.channels, har_spec.num_classes, &rng);
  Deployment har = Prepare(har_model.get(), har_source.train, &rng);
  std::printf("preparing image deployment (ResNet-tiny, 4-bit)...\n");
  auto img_model =
      MakeResNetTiny(img_spec.channels, img_spec.num_classes, &rng);
  Deployment img = Prepare(img_model.get(), img_source.train, &rng);

  // --- Two backends behind one interface: the big HAR cohort is sharded ---
  // (independent pool + batcher per shard, consistent-hash placement), the
  // small image cohort runs a single server. The driving code below only
  // sees FleetBackend&.
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual.iterations = 1;
  opts.seed = 0xF1EE7;
  opts.snapshot_every = stream_batches;  // snapshot each device at the end
  // Serving-plane features: coalesce inference bursts into grouped forward
  // passes (results stay bit-identical to the unbatched path) and bound
  // per-device queues — the report's occupancy/queue-depth/shed lines. The
  // inference and calibration caps are independent (per-class bounds), and
  // must stay above this example's per-device submission burst: the
  // unconditional Submit* calls below abort on a full queue
  // (overload-aware callers use TrySubmit* and handle the shed status).
  opts.enable_batching = true;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_us = 500.0;
  opts.max_inference_queue_per_session = 48;
  opts.max_calibration_queue_per_session = 16;
  // Chaos recovery path: a device lost to the injected shard crash is
  // re-registered after the stream, and must warm-start from the barrier
  // snapshot its crashed migration published.
  if (chaos) opts.warm_start_from_registry = true;
  ShardedFleetServerOptions har_opts;
  har_opts.num_shards = shards;
  har_opts.shard = opts;
  ShardedFleetServer har_server(*har.base, *har.bf, har_opts);
  FleetServer img_server(*img.base, *img.bf, opts);

  // --- Register the fleet: every device gets its own shifted domain. -----
  Stopwatch wall;
  std::vector<std::pair<FleetBackend*, std::string>> fleet;
  for (int d = 0; d < har_devices; ++d) {
    const std::string id = "har-" + std::to_string(d);
    har_server.RegisterDevice(id, har.qcore);
    fleet.emplace_back(&har_server, id);
  }
  for (int d = 0; d < img_devices; ++d) {
    const std::string id = "img-" + std::to_string(d);
    img_server.RegisterDevice(id, img.qcore);
    fleet.emplace_back(&img_server, id);
  }
  std::printf("registered %zu sessions in %.2fs (HAR shard occupancy:",
              fleet.size(), wall.ElapsedSeconds());
  for (int s = 0; s < har_server.num_shards(); ++s) {
    std::printf(" %d", har_server.SessionCountOnShard(s));
  }
  std::printf(")\n\n");
  std::printf("-- whiteboard after registration (HAR cohort) --\n%s\n",
              har_server.whiteboard().Read().ToTable(8).c_str());

  // --- Drive the streams: per device, shifted batches + inference. -------
  // Pre/post accuracies come back through the calibration stats; device
  // domains are regenerated deterministically from the device index.
  wall.Restart();
  std::vector<std::future<BatchStats>> stats;
  for (int d = 0; d < har_devices; ++d) {
    if (d == har_devices / 2) {
      // Live rebalance mid-traffic: add a shard while futures are in
      // flight. Sessions whose ring position changes migrate via barrier
      // snapshot + continuation restore; results are bit-identical to
      // never having moved (see tests/sharding_test.cc). Clear() opens a
      // trace capture window here; it stays open until the stream drains,
      // so the exported timeline holds every migration's detach/attach
      // pair plus the request lifecycles that overlapped the rebalance.
      TraceRing::Global().Clear();
      har_server.Rebalance(shards + 1);
      std::printf("rebalanced HAR cohort to %d shards mid-stream\n",
                  har_server.num_shards());
    }
    const std::string id = "har-" + std::to_string(d);
    if (chaos && !har_server.HasDevice(id)) {
      // This device's migration was hit by the injected shard crash: it
      // left the routing maps loudly. Skip its traffic (an overload-aware
      // client would see unknown-device errors); the chaos report below
      // re-registers it from its barrier snapshot.
      std::printf("chaos: %s lost to the injected shard crash; skipping "
                  "its stream\n",
                  id.c_str());
      continue;
    }
    const int subject = 1 + d % (har_spec.num_subjects - 1);
    HarDomain target = MakeHarDomain(har_spec, subject);
    Rng split_rng(opts.seed ^ static_cast<uint64_t>(d));
    auto batches =
        SplitIntoStreamBatches(target.train, stream_batches, &split_rng);
    auto slices =
        SplitIntoStreamBatches(target.test, stream_batches, &split_rng);
    for (int b = 0; b < stream_batches; ++b) {
      har_server.SubmitInference(id, slices[b].x());
      stats.push_back(
          har_server.SubmitCalibration(id, batches[b], slices[b]));
    }
  }
  for (int d = 0; d < img_devices; ++d) {
    const int domain = 1 + d % (img_spec.num_domains() - 1);
    ImageDomain target = MakeImageDomain(img_spec, domain);
    Rng split_rng(opts.seed ^ static_cast<uint64_t>(1000 + d));
    auto batches =
        SplitIntoStreamBatches(target.train, stream_batches, &split_rng);
    auto slices =
        SplitIntoStreamBatches(target.test, stream_batches, &split_rng);
    const std::string id = "img-" + std::to_string(d);
    for (int b = 0; b < stream_batches; ++b) {
      img_server.SubmitInference(id, slices[b].x());
      stats.push_back(
          img_server.SubmitCalibration(id, batches[b], slices[b]));
    }
  }

  float first_batch_acc = 0.0f;
  float last_batch_acc = 0.0f;
  int n = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    BatchStats s = stats[i].get();
    if (i % stream_batches == 0) {
      first_batch_acc += s.accuracy;
      ++n;
    } else if (i % stream_batches == static_cast<size_t>(stream_batches - 1)) {
      last_batch_acc += s.accuracy;
    }
  }
  har_server.Drain();
  img_server.Drain();
  const double serve_seconds = wall.ElapsedSeconds();

  // Close the rebalance capture window: everything traced since the
  // Clear() above — migrations and the traffic that overlapped them —
  // exports as one chrome://tracing timeline.
  const std::string trace_path = "/tmp/qcore_fleet_rebalance_trace.json";
  {
    std::ofstream trace_out(trace_path);
    trace_out << TraceRing::Global().ToChromeJson();
  }
  std::printf("wrote rebalance-window trace to %s\n", trace_path.c_str());

  // --- Fleet report. -----------------------------------------------------
  std::printf("served %zu calibration batches + inference traffic for %zu "
              "devices in %.2fs\n\n",
              stats.size(), fleet.size(), serve_seconds);
  std::printf("-- HAR cohort (rollup of %d shards) --\n%s\n",
              har_server.num_shards(),
              har_server.metrics().Report().c_str());
  for (int s = 0; s < har_server.num_shards(); ++s) {
    std::printf("   shard %d: %d sessions, %llu inferences, %llu "
                "calibrations\n",
                s, har_server.SessionCountOnShard(s),
                static_cast<unsigned long long>(
                    har_server.shard_metrics(s).inference_requests()),
                static_cast<unsigned long long>(
                    har_server.shard_metrics(s).calibration_batches()));
  }
  std::printf("\n-- image cohort --\n%s\n",
              img_server.metrics().Report().c_str());
  // Cross-cohort rollup: the two backends are independent (different base
  // models), so their metrics merge offline into one fleet-wide view.
  ServingMetrics fleet_total;
  fleet_total.MergeFrom(har_server.metrics());
  fleet_total.MergeFrom(img_server.metrics());
  std::printf("-- fleet total (both cohorts) --\n%s\n",
              fleet_total.Report().c_str());
  std::printf("fleet mean accuracy, first stream batch: %.4f\n",
              first_batch_acc / static_cast<float>(n));
  std::printf("fleet mean accuracy, last stream batch:  %.4f\n",
              last_batch_acc / static_cast<float>(n));
  std::printf("snapshot registry: %zu HAR + %zu image versions "
              "(copy-on-write)\n",
              har_server.snapshots().size(), img_server.snapshots().size());
  std::printf("\n-- whiteboard after serving (HAR cohort; the shard added "
              "by the rebalance has its own row) --\n%s\n",
              har_server.whiteboard().Read().ToTable(8).c_str());

  // --- Chaos report: the fleet survived the injected shard crash. --------
  // The crashed migration lost its session's continuation but NOT its
  // barrier snapshot; re-registering the victim warm-starts it from that
  // snapshot, and the restored model codes must match bit-identically.
  if (chaos) {
    FaultInjector::Uninstall();
    std::printf("== Chaos report (seed %llu) ==\n",
                static_cast<unsigned long long>(chaos_seed));
    std::printf("shard-crash fault: %llu hit(s), %llu fired\n",
                static_cast<unsigned long long>(
                    injector->hits(FaultPoint::kShardCrashDuringMigration)),
                static_cast<unsigned long long>(
                    injector->fired(FaultPoint::kShardCrashDuringMigration)));
    std::vector<std::string> lost;
    for (int d = 0; d < har_devices; ++d) {
      const std::string id = "har-" + std::to_string(d);
      if (!har_server.HasDevice(id)) lost.push_back(id);
    }
    std::printf("devices lost to the crash: %zu / %d (fleet kept serving "
                "the rest)\n",
                lost.size(), har_devices);
    int recovered_devices = 0;
    for (const std::string& id : lost) {
      auto snap = har_server.snapshots().LatestFor(id);
      har_server.RegisterDevice(id, har.qcore);  // warm re-registration
      if (snap == nullptr) continue;
      auto restored = har.base->Clone();
      if (!SnapshotRegistry::RestoreInto(*snap, restored.get()).ok()) {
        continue;
      }
      har_server.WithSessionQuiesced(id, [&](CalibrationSession& s) {
        if (s.model()->AllCodes() == restored->AllCodes()) {
          std::printf("  %s: re-registered, codes bit-identical to barrier "
                      "snapshot v%llu\n",
                      id.c_str(),
                      static_cast<unsigned long long>(snap->version));
          ++recovered_devices;
        }
      });
    }
    har_server.Drain();
    const bool survived =
        injector->fired(FaultPoint::kShardCrashDuringMigration) > 0 &&
        recovered_devices == static_cast<int>(lost.size());
    std::printf("recovery: %d/%zu lost devices restored bit-identically "
                "-> %s\n\n",
                recovered_devices, lost.size(),
                survived ? "SURVIVED" : "FAILED");
    if (!survived) return 1;
  }

  // --- Kill-and-restart: durable snapshots survive the server. -----------
  // A small HAR cohort serves over a registry backed by a CRC-framed
  // write-ahead log. The server is then destroyed ("killed") with its whole
  // in-memory world, and a second server is constructed over the same log:
  // the registry replays every device's latest calibrated snapshot
  // bit-identically, resumes the version counter monotonically, and
  // warm-starts the re-registered sessions from the recovered codes instead
  // of the factory base model.
  const std::string wal_path = "/tmp/qcore_fleet_snapshots.wal";
  std::remove(wal_path.c_str());
  const int wal_devices = std::min(6, har_devices);
  std::printf("\n== Kill-and-restart: %d devices over a WAL-backed "
              "registry ==\n",
              wal_devices);
  uint64_t pre_kill_latest = 0;
  size_t pre_kill_versions = 0;
  {
    auto store = DurableSnapshotStore::Open({wal_path, false});
    if (!store.ok()) {
      std::printf("WAL open failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    SnapshotRegistry durable(std::move(store).value());
    FleetServerOptions wopts = opts;
    wopts.snapshot_every = 0;  // explicit publishes below
    FleetServer server(*har.base, *har.bf, wopts, &durable);
    for (int d = 0; d < wal_devices; ++d) {
      const std::string id = "wal-" + std::to_string(d);
      server.RegisterDevice(id, har.qcore);
      const int subject = 1 + d % (har_spec.num_subjects - 1);
      HarDomain target = MakeHarDomain(har_spec, subject);
      Rng split_rng(opts.seed ^ static_cast<uint64_t>(5000 + d));
      auto batches = SplitIntoStreamBatches(target.train, 1, &split_rng);
      auto slices = SplitIntoStreamBatches(target.test, 1, &split_rng);
      server.SubmitCalibration(id, batches[0], slices[0]);
      server.PublishSnapshot(id);
    }
    server.Drain();
    pre_kill_latest = durable.Latest()->version;
    pre_kill_versions = durable.size();
    std::printf("calibrated + published %zu versions, then killed the "
                "server\n",
                pre_kill_versions);
  }  // server and registry destroyed: only the log file remains
  {
    auto store = DurableSnapshotStore::Open({wal_path, false});
    if (!store.ok()) {
      std::printf("WAL reopen failed: %s\n",
                  store.status().ToString().c_str());
      return 1;
    }
    SnapshotRegistry recovered(std::move(store).value());
    auto latest = recovered.Latest();
    if (latest == nullptr) {
      std::printf("WAL reopen recovered nothing (log truncated to its "
                  "header?)\n");
      return 1;
    }
    std::printf("reopened the WAL: recovered %zu/%zu versions "
                "(latest v%llu)\n",
                recovered.size(), pre_kill_versions,
                static_cast<unsigned long long>(latest->version));
    FleetServerOptions wopts = opts;
    wopts.warm_start_from_registry = true;
    FleetServer server(*har.base, *har.bf, wopts, &recovered);
    int warm_started = 0;
    for (int d = 0; d < wal_devices; ++d) {
      const std::string id = "wal-" + std::to_string(d);
      server.RegisterDevice(id, har.qcore);
      auto snap = recovered.LatestFor(id);
      if (snap == nullptr) continue;  // e.g. its only record was the torn tail
      auto restored = har.base->Clone();
      if (SnapshotRegistry::RestoreInto(*snap, restored.get()).ok()) {
        server.WithSessionQuiesced(id, [&](CalibrationSession& s) {
          if (s.model()->AllCodes() == restored->AllCodes()) ++warm_started;
        });
      }
    }
    std::printf("%d/%d sessions warm-started from their recovered "
                "snapshots\n",
                warm_started, wal_devices);
    const uint64_t resumed =
        server.PublishSnapshot("wal-0").get();
    std::printf("publishing resumed at v%llu (> pre-kill v%llu: %s)\n",
                static_cast<unsigned long long>(resumed),
                static_cast<unsigned long long>(pre_kill_latest),
                resumed > pre_kill_latest ? "yes" : "NO");
    server.Drain();
    // The restarted server's whiteboard shows warm=ownSnapshot rows and the
    // WAL health line sourced from the durable registry.
    std::printf("\n-- whiteboard after kill-and-restart --\n%s\n",
                server.whiteboard().Read().ToTable(8).c_str());
  }
  std::remove(wal_path.c_str());
  return 0;
}
