// Fleet simulation: one server-prepared quantized model deployed to a large
// fleet of simulated edge devices — HAR wearables (subject shift) and image
// sensors (visual-domain shift) — served through the FleetBackend
// interface. The large HAR cohort runs on a ShardedFleetServer (N
// consistent-hash shards, each with its own pool and batcher; mid-run it
// rebalances to a larger shard count live), the smaller image cohort on a
// single FleetServer — the same driving code serves both, which is the
// point of the API. Each device streams its own shifted domain,
// interleaving inference traffic with continual calibration (Algorithms
// 3+4); the servers snapshot calibrated models into copy-on-write
// registries and aggregate fleet-wide metrics (per-shard + rollup for the
// sharded cohort).
//
// Observability: after each phase (registration, serving, kill-and-restart)
// the fleet whiteboard is dumped — one row per shard and per device,
// maintained write-through by the serving layers — and the mid-stream
// rebalance window is captured through the TraceRing and written as
// chrome://tracing JSON to /tmp/qcore_fleet_rebalance_trace.json (open it
// at chrome://tracing or ui.perfetto.dev).
//
// Build & run:  ./build/fleet_simulation
// Environment:  QCORE_FLEET_DEVICES (default 200; HAR cohort, plus 1/4 as
//               many image devices), QCORE_FLEET_THREADS (default 4, per
//               shard for the HAR cohort), QCORE_FLEET_SHARDS (default 2),
//               QCORE_FAST=1 shrinks everything for a quick smoke run.
// Chaos:        --chaos-seed=N installs a deterministic FaultInjector and
//               arms a shard crash on the first migration of the
//               mid-stream rebalance. The run must SURVIVE it: the lost
//               device leaves the routing maps loudly, the rest of the
//               fleet keeps serving, and the chaos report at the end warm
//               re-registers the victim from its barrier snapshot and
//               verifies the restored codes bit-identically (exit 1 if
//               recovery fails). Same seed, same schedule, every run.
// Overload:     --overload runs the overload drill instead of the full
//               simulation: a multi-threaded flood beyond fleet capacity
//               against the whole control plane (per-request latency
//               budgets, hierarchical session/shard/fleet admission,
//               client-side jittered retry, calibration aging, and one
//               non-blocking mid-flood migration). The report breaks sheds
//               down by reason (queue-full / deadline / limiter) and ends
//               with a calibration-progress verdict: every device must
//               complete at least one calibration step under the flood
//               (exit 1 on starvation). With --chaos-seed=N the drill also
//               runs under seeded device-RTT-spike chaos.
// Wide batch:   --wide-batch runs the panel-parallel kernel drill instead:
//               large multi-row inference requests batched into wide
//               forwards whose GEMMs fan out across the panel worker set
//               under the serving pool. Prints panel dispatch counts from
//               the whiteboard and exits 1 if any prediction or logit
//               differs from a single-threaded reference run, or if the
//               wide path never engaged. With --chaos-seed=N the wide pass
//               additionally runs under seeded latency faults (RTT spikes,
//               flusher stalls, pool saturation) — latency may move, bits
//               may not.
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/bitflip.h"
#include "core/qcore_builder.h"
#include "data/har_generator.h"
#include "data/image_generator.h"
#include "models/model_zoo.h"
#include "obs/trace.h"
#include "obs/whiteboard.h"
#include "quant/ste_calibrator.h"
#include "serving/backend.h"
#include "serving/router.h"
#include "serving/server.h"
#include "serving/snapshot.h"
#include "serving/snapshot_store.h"
#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"
#include "testing/fault_injector.h"

using namespace qcore;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::max(1, std::atoi(v)) : fallback;
}

bool Fast() {
  const char* v = std::getenv("QCORE_FAST");
  return v != nullptr && std::string(v) == "1";
}

// One prepared deployment: base model + bit-flip net + QCore, ready to be
// cloned into sessions.
struct Deployment {
  std::unique_ptr<QuantizedModel> base;
  std::unique_ptr<BitFlipNet> bf;
  Dataset qcore;
};

Deployment Prepare(Sequential* model, const Dataset& train, Rng* rng) {
  QCoreBuildOptions build;
  build.size = Fast() ? 12 : 20;
  build.train.epochs = Fast() ? 6 : 10;
  build.train.sgd.lr = 0.03f;
  QCoreBuildResult built = BuildQCore(model, train, build, rng);

  Deployment dep;
  dep.qcore = built.qcore;
  dep.base = std::make_unique<QuantizedModel>(*model, 4);
  BitFlipTrainOptions bft;
  bft.ste.epochs = Fast() ? 6 : 10;
  bft.ste.batch_size = 16;
  bft.augment_episodes = 1;
  dep.bf = std::make_unique<BitFlipNet>(
      TrainBitFlipNet(dep.base.get(), dep.qcore, bft, rng));
  dep.base->DropShadows();
  return dep;
}

// --- The overload drill (--overload). ------------------------------------
// A deliberately over-subscribed sharded cohort: four submitter threads
// flood eight devices with more in-flight demand than the fleet-level
// admission cap allows, a third of the traffic carries a tight latency
// budget, every device's calibration stream competes with the flood (kLow
// at the pool — priority aging is what keeps it scheduled), and one device
// is migrated to the other shard mid-flood while a bystander keeps
// serving. Clients react to sheds the canonical way: RetryWithBackoff with
// per-thread jitter seeds. The report breaks the sheds down by reason and
// the drill verdicts on the property floods usually destroy silently —
// calibration progress (exit 1 if any device starves), plus bystander
// liveness through the migration.
int RunOverloadDrill(const Deployment& har, const HarSpec& har_spec,
                     int threads, bool chaos, uint64_t chaos_seed) {
  constexpr int kDevices = 8;
  constexpr int kSubmitters = 4;
  constexpr int kRounds = 48;

  std::printf("\n== Overload drill: %d submitters flooding %d devices on 2 "
              "shards ==\n",
              kSubmitters, kDevices);

  // Optional chaos flavor: seeded device-RTT spikes make the flood's queue
  // waits erratic. The plane's accounting and the verdict below must hold
  // regardless — latency chaos may change WHICH requests shed, never the
  // ledger arithmetic.
  std::unique_ptr<FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<FaultInjector>(chaos_seed);
    FaultScript spike;
    spike.sticky = true;
    spike.probability = 0.25;
    spike.arg = 2000;  // each spike adds 2ms of device RTT
    injector->Arm(FaultPoint::kDeviceRttSpike, spike);
    injector->Install();
    std::printf("chaos: device-RTT-spike injector installed (seed %llu)\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  FleetServerOptions opts;
  opts.num_threads = std::max(2, threads / 2);
  opts.continual.iterations = 1;
  opts.seed = 0xF1EE7;
  opts.enable_batching = true;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_us = 200.0;
  opts.simulated_device_rtt_ms = 1.0;
  opts.max_inference_queue_per_session = 6;
  opts.max_calibration_queue_per_session = 2;
  opts.calibration_aging_us = 3000;  // starving calibration overtakes at 3ms
  ShardedFleetServerOptions sopts;
  sopts.num_shards = 2;
  sopts.shard = opts;
  // The fleet-level cap is what the flood is sized against: well below the
  // sum of per-session headroom, so limiter sheds show up in the breakdown
  // next to the hotspot's session queue-full sheds.
  sopts.max_queue_per_fleet = 24;
  ShardedFleetServer server(*har.base, *har.bf, sopts);

  for (int d = 0; d < kDevices; ++d) {
    server.RegisterDevice("ov-" + std::to_string(d), har.qcore);
  }

  // Per-device data: each device streams its own shifted subject.
  std::vector<Dataset> batches(kDevices), slices(kDevices);
  for (int d = 0; d < kDevices; ++d) {
    const int subject = 1 + d % (har_spec.num_subjects - 1);
    HarDomain target = MakeHarDomain(har_spec, subject);
    Rng split_rng(opts.seed ^ static_cast<uint64_t>(d));
    batches[d] = SplitIntoStreamBatches(target.train, 1, &split_rng)[0];
    slices[d] = SplitIntoStreamBatches(target.test, 1, &split_rng)[0];
  }

  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> deadline_shed{0};
  std::atomic<uint64_t> abandoned{0};  // admission-shed after all retries
  std::array<std::atomic<uint64_t>, kDevices> calibration_done{};

  Stopwatch wall;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      RetryPolicy retry;
      retry.max_attempts = 4;
      retry.base_backoff_us = 300;
      retry.seed = 0xD811 + static_cast<uint64_t>(s);  // de-synced jitter
      // Calibration is throughput work — it can afford to wait out the
      // flood, so its retry policy is far more persistent than the
      // latency-sensitive inference one.
      RetryPolicy cal_retry;
      cal_retry.max_attempts = 8;
      cal_retry.base_backoff_us = 500;
      cal_retry.seed = 0xCA11B + static_cast<uint64_t>(s);
      std::vector<std::future<InferenceResult>> inflight;
      std::vector<std::pair<int, std::future<BatchStats>>> cal_inflight;
      for (int r = 0; r < kRounds; ++r) {
        // Mostly round-robin, but every fifth round piles onto device 1 so
        // the hotspot's session cap refuses (queue-full sheds) while the
        // spread load hits the fleet cap (limiter sheds).
        const int d = (r % 5 == 0) ? 1 : (s + r) % kDevices;
        const std::string id = "ov-" + std::to_string(d);
        InferenceSubmitOptions sub;
        if (r % 3 == 0) sub.latency_budget_us = 4000.0;  // 1/3 on a budget
        bool admitted = false;
        (void)RetryWithBackoff(retry, [&]() -> Status {
          auto res = server.TrySubmitInference(id, slices[d].x(), sub);
          if (!res.ok()) return res.status();
          inflight.push_back(std::move(res).value());
          admitted = true;
          return Status::OK();
        });
        if (!admitted) abandoned.fetch_add(1, std::memory_order_relaxed);
        // Every sixth round, keep a device's calibration stream moving
        // under the flood; the stagger gives every device several chances
        // from different submitters.
        if (r % 6 == 0) {
          const int cd = (s * 2 + r / 6) % kDevices;
          const std::string cid = "ov-" + std::to_string(cd);
          (void)RetryWithBackoff(cal_retry, [&]() -> Status {
            auto res = server.TrySubmitCalibration(cid, batches[cd],
                                                   slices[cd]);
            if (!res.ok()) return res.status();
            cal_inflight.emplace_back(cd, std::move(res).value());
            return Status::OK();
          });
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      for (auto& fut : inflight) {
        const InferenceResult r = fut.get();
        if (r.status.ok()) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        } else {
          deadline_shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (auto& [cd, fut] : cal_inflight) {
        fut.get();
        calibration_done[static_cast<size_t>(cd)].fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }

  // Mid-flood, migrate ov-0 to the other shard (non-blocking protocol:
  // drain under a shared routing lock) while the main thread probes a
  // bystander device — its budget-less submissions must keep delivering
  // while the mover drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int source_shard = server.ShardOf("ov-0");
  const int target_shard = (source_shard + 1) % server.num_shards();
  std::atomic<bool> migration_done{false};
  uint64_t moved_version = 0;
  std::thread migrator([&] {
    moved_version = server.MoveDevice("ov-0", target_shard);
    migration_done.store(true, std::memory_order_release);
  });
  uint64_t bystander_delivered = 0;
  RetryPolicy probe_retry;
  probe_retry.max_attempts = 6;
  probe_retry.seed = 0xB15;
  while (!migration_done.load(std::memory_order_acquire)) {
    std::future<InferenceResult> fut;
    bool admitted = false;
    (void)RetryWithBackoff(probe_retry, [&]() -> Status {
      auto res = server.TrySubmitInference("ov-3", slices[3].x());
      if (!res.ok()) return res.status();
      fut = std::move(res).value();
      admitted = true;
      return Status::OK();
    });
    if (admitted && fut.get().status.ok()) ++bystander_delivered;
  }
  migrator.join();
  for (auto& t : submitters) t.join();
  server.Drain();
  const double drill_seconds = wall.ElapsedSeconds();

  // --- Drill report. -----------------------------------------------------
  const ServingMetrics& m = server.metrics();
  const uint64_t submitted =
      static_cast<uint64_t>(kSubmitters) * static_cast<uint64_t>(kRounds);
  std::printf("\nflooded %llu inference submissions (plus retries and "
              "calibration) in %.2fs\n",
              static_cast<unsigned long long>(submitted), drill_seconds);
  std::printf("client view: %llu delivered, %llu deadline-shed, %llu "
              "abandoned after %d attempts\n",
              static_cast<unsigned long long>(delivered.load()),
              static_cast<unsigned long long>(deadline_shed.load()),
              static_cast<unsigned long long>(abandoned.load()), 4);
  std::printf("server view (every retry attempt counts): shed-by-reason "
              "queue-full=%llu limiter=%llu deadline=%llu\n",
              static_cast<unsigned long long>(m.shed_queue_full()),
              static_cast<unsigned long long>(m.shed_limiter()),
              static_cast<unsigned long long>(m.shed_deadline()));
  std::printf("migration: ov-0 shard %d -> %d (snapshot v%llu) with %llu "
              "bystander probes delivered during the drain\n",
              source_shard, target_shard,
              static_cast<unsigned long long>(moved_version),
              static_cast<unsigned long long>(bystander_delivered));
  if (chaos) {
    std::printf("chaos: rtt-spike fault %llu hit(s), %llu fired\n",
                static_cast<unsigned long long>(
                    injector->hits(FaultPoint::kDeviceRttSpike)),
                static_cast<unsigned long long>(
                    injector->fired(FaultPoint::kDeviceRttSpike)));
    FaultInjector::Uninstall();
  }
  std::printf("\n-- serving metrics (2-shard rollup) --\n%s\n",
              m.Report().c_str());
  std::printf("-- whiteboard (per-reason shed columns) --\n%s\n",
              server.whiteboard().Read().ToTable(kDevices).c_str());

  // --- Verdict: nobody starves. The whole point of priority aging + -------
  // hierarchical admission is that a flood of kHigh inference cannot
  // silently stop the fleet from calibrating.
  int starved = 0;
  std::printf("calibration progress under flood:");
  for (int d = 0; d < kDevices; ++d) {
    const uint64_t done = calibration_done[static_cast<size_t>(d)].load();
    std::printf(" ov-%d=%llu", d, static_cast<unsigned long long>(done));
    if (done == 0) ++starved;
  }
  std::printf("\n");
  const bool delivered_any = delivered.load() > 0;
  const bool migrated = server.ShardOf("ov-0") == target_shard;
  const bool ok = starved == 0 && delivered_any && migrated &&
                  bystander_delivered > 0;
  std::printf("verdict: %d starved device(s), mover %s, bystander %s -> "
              "%s\n",
              starved, migrated ? "relocated" : "LOST",
              bystander_delivered > 0 ? "stayed live" : "STALLED",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// --- The wide-batch drill (--wide-batch). ---------------------------------
// Panel-parallel kernels under the serving pool: large multi-row inference
// requests are coalesced by the batcher into wider forwards whose lowered
// GEMMs clear the (lowered) crossover, so pool workers' forwards fan out
// across the panel worker set — the nested case the ParallelFor contract
// exists for. The drill runs the same request stream twice, wide
// (gemm_threads=4) and as a single-threaded reference, and verdicts on the
// two properties the parallel substrate guarantees: every prediction
// bit-equal to the reference, and the wide run actually dispatching panel
// work (a drill that silently stayed narrow proves nothing). Raw logits of
// one large forward are also compared float-for-float — predictions alone
// would forgive sub-ULP drift that argmax happens to absorb.
// With --chaos-seed=N, sticky latency faults (device RTT spikes, batcher
// flusher stalls, pool-worker stalls) run under the wide pass: they may
// reshape batching and scheduling, never bits.
int RunWideBatchDrill(const Deployment& har, const HarSpec& har_spec,
                      bool chaos, uint64_t chaos_seed) {
  constexpr int kDevices = 2;
  constexpr int kRowsPerRequest = 16;
  constexpr int kRequests = 24;

  std::printf("== Wide-batch drill: deterministic panel-parallel GEMM "
              "under the serving pool ==\n\n");

  std::unique_ptr<FaultInjector> injector;
  if (chaos) {
    injector = std::make_unique<FaultInjector>(chaos_seed);
    FaultScript rtt;
    rtt.sticky = true;
    rtt.probability = 0.3;
    rtt.arg = 300;  // microseconds
    injector->Arm(FaultPoint::kDeviceRttSpike, rtt);
    FaultScript stall;
    stall.sticky = true;
    stall.probability = 0.3;
    stall.arg = 200;
    injector->Arm(FaultPoint::kBatcherFlusherStall, stall);
    FaultScript saturate;
    saturate.sticky = true;
    saturate.probability = 0.2;
    saturate.arg = 100;
    injector->Arm(FaultPoint::kPoolSaturation, saturate);
    injector->Install();
    std::printf("chaos: latency faults armed (seed %llu) — RTT spikes, "
                "flusher stalls, pool saturation; bits must not move\n\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  // Deterministic multi-row requests sliced from the shifted target domain.
  HarDomain target = MakeHarDomain(har_spec, 1);
  const Tensor& tx = target.test.x();
  std::vector<Tensor> requests;
  for (int r = 0; r < kRequests; ++r) {
    const int64_t begin = (r * kRowsPerRequest) % (tx.dim(0) - 1);
    const int64_t end = std::min(begin + kRowsPerRequest, tx.dim(0));
    requests.push_back(tx.SliceRows(begin, end));
  }

  // Lower the crossover so this drill's model (small HAR forwards) takes
  // the wide path; production keeps the tuned default.
  kernels::set_gemm_parallel_min_work(int64_t{1} << 12);

  // Kernel-level check first: one large batched forward, compared
  // float-for-float between thread budgets.
  Tensor big = ConcatRows({&tx, &tx, &tx, &tx});
  kernels::set_gemm_threads(1);
  Tensor ref_logits = har.base->Clone()->Forward(big, /*training=*/false);
  kernels::set_gemm_threads(4);
  const kernels::GemmDispatchCounters before =
      kernels::ThreadGemmDispatchCounters();
  Tensor wide_logits = har.base->Clone()->Forward(big, /*training=*/false);
  const kernels::GemmDispatchCounters after =
      kernels::ThreadGemmDispatchCounters();
  bool logits_identical = wide_logits.SameShape(ref_logits);
  if (logits_identical) {
    for (int64_t i = 0; i < ref_logits.size(); ++i) {
      if (wide_logits[i] != ref_logits[i]) {
        logits_identical = false;
        break;
      }
    }
  }
  std::printf("direct forward (%lld rows): %llu wide GEMM dispatches, "
              "%llu panel tasks, logits %s\n",
              static_cast<long long>(big.dim(0)),
              static_cast<unsigned long long>(after.wide - before.wide),
              static_cast<unsigned long long>(after.panel_tasks -
                                              before.panel_tasks),
              logits_identical ? "bit-identical" : "DIVERGED");

  // Serving-path check: the same stream through a batching FleetServer at
  // each thread budget. Inference mutates nothing, so predictions must be
  // independent of grouping, scheduling, and the kernel thread budget.
  auto run_stream = [&](int gemm_budget, uint64_t* wide_dispatches,
                        uint64_t* panel_tasks,
                        std::string* board) -> std::vector<std::vector<int>> {
    kernels::set_gemm_threads(gemm_budget);
    FleetServerOptions opts;
    opts.num_threads = 2;
    opts.seed = 0xD0C5;
    opts.continual.iterations = 1;
    opts.enable_batching = true;
    opts.batching.max_batch = 4;
    opts.batching.max_delay_us = 400.0;
    FleetServer server(*har.base, *har.bf, opts);
    for (int d = 0; d < kDevices; ++d) {
      server.RegisterDevice("wide-" + std::to_string(d), har.qcore);
    }
    std::vector<std::future<InferenceResult>> futures;
    for (int r = 0; r < kRequests; ++r) {
      futures.push_back(server.SubmitInference(
          "wide-" + std::to_string(r % kDevices), requests[r]));
    }
    std::vector<std::vector<int>> preds;
    for (auto& f : futures) preds.push_back(f.get().predictions);
    server.Drain();
    *wide_dispatches = server.metrics().panel_wide_dispatches();
    *panel_tasks = server.metrics().panel_tasks();
    if (board != nullptr) *board = server.whiteboard().Read().ToTable();
    return preds;
  };

  uint64_t ref_wide = 0, ref_tasks = 0;
  const std::vector<std::vector<int>> ref_preds =
      run_stream(1, &ref_wide, &ref_tasks, nullptr);
  uint64_t mt_wide = 0, mt_tasks = 0;
  std::string board;
  const std::vector<std::vector<int>> mt_preds =
      run_stream(4, &mt_wide, &mt_tasks, &board);

  std::printf("\nwide run whiteboard (panels column = wide/tasks):\n%s\n",
              board.c_str());
  std::printf("served stream: reference %llu wide dispatches (budget 1), "
              "wide run %llu wide dispatches / %llu panel tasks\n",
              static_cast<unsigned long long>(ref_wide),
              static_cast<unsigned long long>(mt_wide),
              static_cast<unsigned long long>(mt_tasks));

  const bool preds_identical = mt_preds == ref_preds;
  const bool went_wide = mt_wide > 0;
  std::printf("verdict: logits %s, predictions %s, panel dispatch %s\n",
              logits_identical ? "OK" : "FAIL",
              preds_identical ? "OK" : "FAIL",
              went_wide ? "OK" : "FAIL (wide path never engaged)");
  if (chaos) {
    std::printf("chaos: rtt_spikes=%llu flusher_stalls=%llu "
                "pool_stalls=%llu\n",
                static_cast<unsigned long long>(
                    injector->fired(FaultPoint::kDeviceRttSpike)),
                static_cast<unsigned long long>(
                    injector->fired(FaultPoint::kBatcherFlusherStall)),
                static_cast<unsigned long long>(
                    injector->fired(FaultPoint::kPoolSaturation)));
  }

  kernels::set_gemm_threads(1);
  kernels::set_gemm_parallel_min_work(kernels::kDefaultGemmParallelMinWork);
  return (logits_identical && preds_identical && went_wide) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int har_devices = EnvInt("QCORE_FLEET_DEVICES", Fast() ? 24 : 200);
  const int img_devices = std::max(1, har_devices / 4);
  const int threads = EnvInt("QCORE_FLEET_THREADS", 4);
  const int shards = EnvInt("QCORE_FLEET_SHARDS", 2);
  const int stream_batches = 2;

  bool chaos = false;
  bool overload = false;
  bool wide_batch = false;
  uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos-seed=";
    if (arg.rfind(prefix, 0) == 0) {
      chaos = true;
      chaos_seed = std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
    } else if (arg == "--overload") {
      overload = true;
    } else if (arg == "--wide-batch") {
      wide_batch = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s (try --chaos-seed=N, --overload, "
                   "or --wide-batch)\n",
                   arg.c_str());
      return 2;
    }
  }

  std::printf("== Fleet simulation: %d HAR devices on %d shards (x%d "
              "threads) + %d image devices ==\n\n",
              har_devices, shards, threads, img_devices);

  // Chaos mode: a deterministic injector, armed so the FIRST migration of
  // the mid-stream rebalance loses its target shard. Everything below must
  // tolerate the loss; the report at the end proves the recovery.
  std::unique_ptr<FaultInjector> injector;
  // The overload and wide-batch drills arm their own injectors.
  if (chaos && !overload && !wide_batch) {
    injector = std::make_unique<FaultInjector>(chaos_seed);
    FaultScript crash;
    crash.fire_on_hit = 1;  // one-shot on the rebalance's first migration
    injector->Arm(FaultPoint::kShardCrashDuringMigration, crash);
    injector->Install();
    std::printf("chaos: injector installed (seed %llu), shard crash armed "
                "for the mid-stream rebalance\n\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  // --- Server-side preparation: one deployment per modality. -------------
  HarSpec har_spec = HarSpec::Usc();
  har_spec.num_classes = Fast() ? 5 : 8;
  har_spec.channels = 3;
  har_spec.length = Fast() ? 24 : 32;
  har_spec.train_per_class = 8;
  har_spec.test_per_class = 4;
  HarDomain har_source = MakeHarDomain(har_spec, 0);

  ImageSpec img_spec = ImageSpec::Caltech10();
  img_spec.num_classes = Fast() ? 4 : 6;
  img_spec.height = 12;
  img_spec.width = 12;
  img_spec.train_per_class = 8;
  img_spec.test_per_class = 4;
  ImageDomain img_source = MakeImageDomain(img_spec, 0);

  Rng rng(0xF1EE7);
  std::printf("preparing HAR deployment (OmniScaleCNN, 4-bit)...\n");
  auto har_model =
      MakeOmniScaleCnn(har_spec.channels, har_spec.num_classes, &rng);
  Deployment har = Prepare(har_model.get(), har_source.train, &rng);
  if (overload) {
    // Overload drill replaces the full simulation: it only needs the HAR
    // deployment, so the image cohort is never prepared.
    return RunOverloadDrill(har, har_spec, threads, chaos, chaos_seed);
  }
  if (wide_batch) {
    // Same shape as the overload drill: HAR deployment only.
    return RunWideBatchDrill(har, har_spec, chaos, chaos_seed);
  }
  std::printf("preparing image deployment (ResNet-tiny, 4-bit)...\n");
  auto img_model =
      MakeResNetTiny(img_spec.channels, img_spec.num_classes, &rng);
  Deployment img = Prepare(img_model.get(), img_source.train, &rng);

  // --- Two backends behind one interface: the big HAR cohort is sharded ---
  // (independent pool + batcher per shard, consistent-hash placement), the
  // small image cohort runs a single server. The driving code below only
  // sees FleetBackend&.
  FleetServerOptions opts;
  opts.num_threads = threads;
  opts.continual.iterations = 1;
  opts.seed = 0xF1EE7;
  opts.snapshot_every = stream_batches;  // snapshot each device at the end
  // Serving-plane features: coalesce inference bursts into grouped forward
  // passes (results stay bit-identical to the unbatched path) and bound
  // per-device queues — the report's occupancy/queue-depth/shed lines. The
  // inference and calibration caps are independent (per-class bounds), and
  // must stay above this example's per-device submission burst: the
  // unconditional Submit* calls below abort on a full queue
  // (overload-aware callers use TrySubmit* and handle the shed status).
  opts.enable_batching = true;
  opts.batching.max_batch = 4;
  opts.batching.max_delay_us = 500.0;
  opts.max_inference_queue_per_session = 48;
  opts.max_calibration_queue_per_session = 16;
  // Chaos recovery path: a device lost to the injected shard crash is
  // re-registered after the stream, and must warm-start from the barrier
  // snapshot its crashed migration published.
  if (chaos) opts.warm_start_from_registry = true;
  ShardedFleetServerOptions har_opts;
  har_opts.num_shards = shards;
  har_opts.shard = opts;
  ShardedFleetServer har_server(*har.base, *har.bf, har_opts);
  FleetServer img_server(*img.base, *img.bf, opts);

  // --- Register the fleet: every device gets its own shifted domain. -----
  Stopwatch wall;
  std::vector<std::pair<FleetBackend*, std::string>> fleet;
  for (int d = 0; d < har_devices; ++d) {
    const std::string id = "har-" + std::to_string(d);
    har_server.RegisterDevice(id, har.qcore);
    fleet.emplace_back(&har_server, id);
  }
  for (int d = 0; d < img_devices; ++d) {
    const std::string id = "img-" + std::to_string(d);
    img_server.RegisterDevice(id, img.qcore);
    fleet.emplace_back(&img_server, id);
  }
  std::printf("registered %zu sessions in %.2fs (HAR shard occupancy:",
              fleet.size(), wall.ElapsedSeconds());
  for (int s = 0; s < har_server.num_shards(); ++s) {
    std::printf(" %d", har_server.SessionCountOnShard(s));
  }
  std::printf(")\n\n");
  std::printf("-- whiteboard after registration (HAR cohort) --\n%s\n",
              har_server.whiteboard().Read().ToTable(8).c_str());

  // --- Drive the streams: per device, shifted batches + inference. -------
  // Pre/post accuracies come back through the calibration stats; device
  // domains are regenerated deterministically from the device index.
  wall.Restart();
  std::vector<std::future<BatchStats>> stats;
  for (int d = 0; d < har_devices; ++d) {
    if (d == har_devices / 2) {
      // Live rebalance mid-traffic: add a shard while futures are in
      // flight. Sessions whose ring position changes migrate via barrier
      // snapshot + continuation restore; results are bit-identical to
      // never having moved (see tests/sharding_test.cc). Clear() opens a
      // trace capture window here; it stays open until the stream drains,
      // so the exported timeline holds every migration's detach/attach
      // pair plus the request lifecycles that overlapped the rebalance.
      TraceRing::Global().Clear();
      har_server.Rebalance(shards + 1);
      std::printf("rebalanced HAR cohort to %d shards mid-stream\n",
                  har_server.num_shards());
    }
    const std::string id = "har-" + std::to_string(d);
    if (chaos && !har_server.HasDevice(id)) {
      // This device's migration was hit by the injected shard crash: it
      // left the routing maps loudly. Skip its traffic (an overload-aware
      // client would see unknown-device errors); the chaos report below
      // re-registers it from its barrier snapshot.
      std::printf("chaos: %s lost to the injected shard crash; skipping "
                  "its stream\n",
                  id.c_str());
      continue;
    }
    const int subject = 1 + d % (har_spec.num_subjects - 1);
    HarDomain target = MakeHarDomain(har_spec, subject);
    Rng split_rng(opts.seed ^ static_cast<uint64_t>(d));
    auto batches =
        SplitIntoStreamBatches(target.train, stream_batches, &split_rng);
    auto slices =
        SplitIntoStreamBatches(target.test, stream_batches, &split_rng);
    for (int b = 0; b < stream_batches; ++b) {
      har_server.SubmitInference(id, slices[b].x());
      stats.push_back(
          har_server.SubmitCalibration(id, batches[b], slices[b]));
    }
  }
  for (int d = 0; d < img_devices; ++d) {
    const int domain = 1 + d % (img_spec.num_domains() - 1);
    ImageDomain target = MakeImageDomain(img_spec, domain);
    Rng split_rng(opts.seed ^ static_cast<uint64_t>(1000 + d));
    auto batches =
        SplitIntoStreamBatches(target.train, stream_batches, &split_rng);
    auto slices =
        SplitIntoStreamBatches(target.test, stream_batches, &split_rng);
    const std::string id = "img-" + std::to_string(d);
    for (int b = 0; b < stream_batches; ++b) {
      img_server.SubmitInference(id, slices[b].x());
      stats.push_back(
          img_server.SubmitCalibration(id, batches[b], slices[b]));
    }
  }

  float first_batch_acc = 0.0f;
  float last_batch_acc = 0.0f;
  int n = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    BatchStats s = stats[i].get();
    if (i % stream_batches == 0) {
      first_batch_acc += s.accuracy;
      ++n;
    } else if (i % stream_batches == static_cast<size_t>(stream_batches - 1)) {
      last_batch_acc += s.accuracy;
    }
  }
  har_server.Drain();
  img_server.Drain();
  const double serve_seconds = wall.ElapsedSeconds();

  // Close the rebalance capture window: everything traced since the
  // Clear() above — migrations and the traffic that overlapped them —
  // exports as one chrome://tracing timeline.
  const std::string trace_path = "/tmp/qcore_fleet_rebalance_trace.json";
  {
    std::ofstream trace_out(trace_path);
    trace_out << TraceRing::Global().ToChromeJson();
  }
  std::printf("wrote rebalance-window trace to %s\n", trace_path.c_str());

  // --- Fleet report. -----------------------------------------------------
  std::printf("served %zu calibration batches + inference traffic for %zu "
              "devices in %.2fs\n\n",
              stats.size(), fleet.size(), serve_seconds);
  std::printf("-- HAR cohort (rollup of %d shards) --\n%s\n",
              har_server.num_shards(),
              har_server.metrics().Report().c_str());
  for (int s = 0; s < har_server.num_shards(); ++s) {
    std::printf("   shard %d: %d sessions, %llu inferences, %llu "
                "calibrations\n",
                s, har_server.SessionCountOnShard(s),
                static_cast<unsigned long long>(
                    har_server.shard_metrics(s).inference_requests()),
                static_cast<unsigned long long>(
                    har_server.shard_metrics(s).calibration_batches()));
  }
  std::printf("\n-- image cohort --\n%s\n",
              img_server.metrics().Report().c_str());
  // Cross-cohort rollup: the two backends are independent (different base
  // models), so their metrics merge offline into one fleet-wide view.
  ServingMetrics fleet_total;
  fleet_total.MergeFrom(har_server.metrics());
  fleet_total.MergeFrom(img_server.metrics());
  std::printf("-- fleet total (both cohorts) --\n%s\n",
              fleet_total.Report().c_str());
  std::printf("fleet mean accuracy, first stream batch: %.4f\n",
              first_batch_acc / static_cast<float>(n));
  std::printf("fleet mean accuracy, last stream batch:  %.4f\n",
              last_batch_acc / static_cast<float>(n));
  std::printf("snapshot registry: %zu HAR + %zu image versions "
              "(copy-on-write)\n",
              har_server.snapshots().size(), img_server.snapshots().size());
  std::printf("\n-- whiteboard after serving (HAR cohort; the shard added "
              "by the rebalance has its own row) --\n%s\n",
              har_server.whiteboard().Read().ToTable(8).c_str());

  // --- Chaos report: the fleet survived the injected shard crash. --------
  // The crashed migration lost its session's continuation but NOT its
  // barrier snapshot; re-registering the victim warm-starts it from that
  // snapshot, and the restored model codes must match bit-identically.
  if (chaos) {
    FaultInjector::Uninstall();
    std::printf("== Chaos report (seed %llu) ==\n",
                static_cast<unsigned long long>(chaos_seed));
    std::printf("shard-crash fault: %llu hit(s), %llu fired\n",
                static_cast<unsigned long long>(
                    injector->hits(FaultPoint::kShardCrashDuringMigration)),
                static_cast<unsigned long long>(
                    injector->fired(FaultPoint::kShardCrashDuringMigration)));
    std::vector<std::string> lost;
    for (int d = 0; d < har_devices; ++d) {
      const std::string id = "har-" + std::to_string(d);
      if (!har_server.HasDevice(id)) lost.push_back(id);
    }
    std::printf("devices lost to the crash: %zu / %d (fleet kept serving "
                "the rest)\n",
                lost.size(), har_devices);
    int recovered_devices = 0;
    for (const std::string& id : lost) {
      auto snap = har_server.snapshots().LatestFor(id);
      har_server.RegisterDevice(id, har.qcore);  // warm re-registration
      if (snap == nullptr) continue;
      auto restored = har.base->Clone();
      if (!SnapshotRegistry::RestoreInto(*snap, restored.get()).ok()) {
        continue;
      }
      har_server.WithSessionQuiesced(id, [&](CalibrationSession& s) {
        if (s.model()->AllCodes() == restored->AllCodes()) {
          std::printf("  %s: re-registered, codes bit-identical to barrier "
                      "snapshot v%llu\n",
                      id.c_str(),
                      static_cast<unsigned long long>(snap->version));
          ++recovered_devices;
        }
      });
    }
    har_server.Drain();
    const bool survived =
        injector->fired(FaultPoint::kShardCrashDuringMigration) > 0 &&
        recovered_devices == static_cast<int>(lost.size());
    std::printf("recovery: %d/%zu lost devices restored bit-identically "
                "-> %s\n\n",
                recovered_devices, lost.size(),
                survived ? "SURVIVED" : "FAILED");
    if (!survived) return 1;
  }

  // --- Kill-and-restart: durable snapshots survive the server. -----------
  // A small HAR cohort serves over a registry backed by a CRC-framed
  // write-ahead log. The server is then destroyed ("killed") with its whole
  // in-memory world, and a second server is constructed over the same log:
  // the registry replays every device's latest calibrated snapshot
  // bit-identically, resumes the version counter monotonically, and
  // warm-starts the re-registered sessions from the recovered codes instead
  // of the factory base model.
  const std::string wal_path = "/tmp/qcore_fleet_snapshots.wal";
  std::remove(wal_path.c_str());
  const int wal_devices = std::min(6, har_devices);
  std::printf("\n== Kill-and-restart: %d devices over a WAL-backed "
              "registry ==\n",
              wal_devices);
  uint64_t pre_kill_latest = 0;
  size_t pre_kill_versions = 0;
  {
    auto store = DurableSnapshotStore::Open({wal_path, false});
    if (!store.ok()) {
      std::printf("WAL open failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    SnapshotRegistry durable(std::move(store).value());
    FleetServerOptions wopts = opts;
    wopts.snapshot_every = 0;  // explicit publishes below
    FleetServer server(*har.base, *har.bf, wopts, &durable);
    for (int d = 0; d < wal_devices; ++d) {
      const std::string id = "wal-" + std::to_string(d);
      server.RegisterDevice(id, har.qcore);
      const int subject = 1 + d % (har_spec.num_subjects - 1);
      HarDomain target = MakeHarDomain(har_spec, subject);
      Rng split_rng(opts.seed ^ static_cast<uint64_t>(5000 + d));
      auto batches = SplitIntoStreamBatches(target.train, 1, &split_rng);
      auto slices = SplitIntoStreamBatches(target.test, 1, &split_rng);
      server.SubmitCalibration(id, batches[0], slices[0]);
      server.PublishSnapshot(id);
    }
    server.Drain();
    pre_kill_latest = durable.Latest()->version;
    pre_kill_versions = durable.size();
    std::printf("calibrated + published %zu versions, then killed the "
                "server\n",
                pre_kill_versions);
  }  // server and registry destroyed: only the log file remains
  {
    auto store = DurableSnapshotStore::Open({wal_path, false});
    if (!store.ok()) {
      std::printf("WAL reopen failed: %s\n",
                  store.status().ToString().c_str());
      return 1;
    }
    SnapshotRegistry recovered(std::move(store).value());
    auto latest = recovered.Latest();
    if (latest == nullptr) {
      std::printf("WAL reopen recovered nothing (log truncated to its "
                  "header?)\n");
      return 1;
    }
    std::printf("reopened the WAL: recovered %zu/%zu versions "
                "(latest v%llu)\n",
                recovered.size(), pre_kill_versions,
                static_cast<unsigned long long>(latest->version));
    FleetServerOptions wopts = opts;
    wopts.warm_start_from_registry = true;
    FleetServer server(*har.base, *har.bf, wopts, &recovered);
    int warm_started = 0;
    for (int d = 0; d < wal_devices; ++d) {
      const std::string id = "wal-" + std::to_string(d);
      server.RegisterDevice(id, har.qcore);
      auto snap = recovered.LatestFor(id);
      if (snap == nullptr) continue;  // e.g. its only record was the torn tail
      auto restored = har.base->Clone();
      if (SnapshotRegistry::RestoreInto(*snap, restored.get()).ok()) {
        server.WithSessionQuiesced(id, [&](CalibrationSession& s) {
          if (s.model()->AllCodes() == restored->AllCodes()) ++warm_started;
        });
      }
    }
    std::printf("%d/%d sessions warm-started from their recovered "
                "snapshots\n",
                warm_started, wal_devices);
    const uint64_t resumed =
        server.PublishSnapshot("wal-0").get();
    std::printf("publishing resumed at v%llu (> pre-kill v%llu: %s)\n",
                static_cast<unsigned long long>(resumed),
                static_cast<unsigned long long>(pre_kill_latest),
                resumed > pre_kill_latest ? "yes" : "NO");
    server.Drain();
    // The restarted server's whiteboard shows warm=ownSnapshot rows and the
    // WAL health line sourced from the durable registry.
    std::printf("\n-- whiteboard after kill-and-restart --\n%s\n",
                server.whiteboard().Read().ToTable(8).c_str());
  }
  std::remove(wal_path.c_str());
  return 0;
}
