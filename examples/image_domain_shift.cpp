// Scenario: an image classifier (Caltech10-like office objects) trained on
// the "DSLR" domain and deployed across the other photometric domains
// (Amazon / Caltech / Webcam). Shows that the same QCore machinery drives a
// 2-D convolutional model, and compares against an ER rehearsal baseline.
//
// Build & run:  ./build/examples/image_domain_shift
#include <cstdio>

#include "baselines/continual_learner.h"
#include "core/pipeline.h"
#include "data/image_generator.h"
#include "models/model_zoo.h"
#include "nn/training.h"
#include "quant/ste_calibrator.h"

using namespace qcore;

int main() {
  ImageSpec spec = ImageSpec::Caltech10();
  const int source_idx = spec.DomainIndex("DSLR");
  ImageDomain source = MakeImageDomain(spec, source_idx);
  std::printf("Caltech10-like images: %d classes, %dx%dx%d; source domain "
              "DSLR\n",
              spec.num_classes, spec.channels, spec.height, spec.width);

  Rng rng(33);
  auto model = MakeResNetTiny(spec.channels, spec.num_classes, &rng);

  PipelineOptions options;
  options.bits = 4;
  options.build.size = 30;
  options.build.train.epochs = 12;
  options.build.train.sgd.lr = 0.02f;
  options.bf_train.ste.epochs = 20;
  options.bf_train.ste.batch_size = 16;
  options.stream_batches = 5;

  for (const char* target_name : {"Amazon", "Webcam"}) {
    ImageDomain target =
        MakeImageDomain(spec, spec.DomainIndex(target_name));
    Rng run_rng(33);
    auto run_model = MakeResNetTiny(spec.channels, spec.num_classes,
                                    &run_rng);
    PipelineResult qcore_result =
        RunQCorePipeline(run_model.get(), source.train, source.test,
                         target.train, target.test, options, &run_rng);

    // ER baseline from the same trained FP model, for contrast.
    QuantizedModel er_model(*run_model, options.bits);
    SteOptions init;
    init.epochs = 12;
    SteCalibrate(&er_model, source.train.x(), source.train.labels(), init,
                 &run_rng);
    LearnerOptions lopt;
    lopt.epochs = 15;
    lopt.sgd.lr = 0.02f;
    auto er = MakeLearner("ER", &er_model, lopt, &run_rng);
    auto batches =
        SplitIntoStreamBatches(target.train, options.stream_batches, &run_rng);
    auto slices =
        SplitIntoStreamBatches(target.test, options.stream_batches, &run_rng);
    double er_acc = 0.0;
    for (int b = 0; b < options.stream_batches; ++b) {
      er->ObserveBatch(batches[static_cast<size_t>(b)]);
      er_acc += er->Evaluate(slices[static_cast<size_t>(b)]);
    }
    er_acc /= options.stream_batches;

    std::printf(
        "DSLR -> %-7s  QCore avg acc %.3f (%.2f s/calibration)   "
        "ER avg acc %.3f\n",
        target_name, qcore_result.average_accuracy,
        qcore_result.seconds_per_calibration, er_acc);
  }
  return 0;
}
