// Quickstart: the complete QCore workflow in ~60 lines.
//
//   1. Generate a source-domain training set and train a full-precision
//      classifier while building the quantization-aware QCore (Algorithm 1).
//   2. Quantize the model to 4 bits and run the initial STE calibration,
//      training the bit-flipping network as a by-product (Algorithm 2).
//   3. Deploy (drop the full-precision masters) and stream a shifted domain
//      through the continual calibration loop (Algorithms 3 + 4).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "data/har_generator.h"
#include "models/model_zoo.h"

using namespace qcore;

int main() {
  // Synthetic human-activity data: subject 0 is the training domain,
  // subject 1 the deployment domain (different sensor gains/biases/noise).
  HarSpec spec = HarSpec::Usc();
  HarDomain source = MakeHarDomain(spec, /*subject=*/0);
  HarDomain target = MakeHarDomain(spec, /*subject=*/1);

  Rng rng(2024);
  std::unique_ptr<Sequential> model =
      MakeInceptionTime(spec.channels, spec.num_classes, &rng);

  PipelineOptions options;
  options.bits = 4;               // deploy a 4-bit model
  options.build.size = 30;        // |QCore| = 30 examples
  options.build.train.epochs = 15;
  options.build.train.sgd.lr = 0.02f;
  options.bf_train.ste.epochs = 30;
  options.bf_train.ste.batch_size = 16;
  options.stream_batches = 10;    // the paper's streaming protocol

  std::printf("Training FP model + building QCore, quantizing to %d bits, "
              "then streaming %d batches...\n",
              options.bits, options.stream_batches);
  PipelineResult result =
      RunQCorePipeline(model.get(), source.train, source.test, target.train,
                       target.test, options, &rng);

  std::printf("\nQCore subset: %zu examples, information loss eps = %.4f\n",
              result.qcore_indices.size(), result.info_loss);
  std::printf("4-bit accuracy on the source domain after initial "
              "calibration: %.3f\n",
              result.post_calibration_source_accuracy);
  std::printf("\nContinual calibration on the shifted domain:\n");
  for (size_t b = 0; b < result.per_batch.size(); ++b) {
    std::printf("  batch %2zu: accuracy %.3f  (calibration %.3f s, "
                "no back-propagation)\n",
                b + 1, result.per_batch[b].accuracy,
                result.per_batch[b].calibration_seconds);
  }
  std::printf("\nAverage accuracy across the stream: %.3f\n",
              result.average_accuracy);
  std::printf("Average calibration time per batch:  %.3f s\n",
              result.seconds_per_calibration);
  return 0;
}
