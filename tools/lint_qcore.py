#!/usr/bin/env python3
"""Repo-local lint for qcore's concurrency and determinism contracts.

Five rule families, each enforcing an invariant the test suite relies on
but a compiler cannot check by itself:

  naked-sync          No std synchronization primitive (std::mutex,
                      std::shared_mutex, std::condition_variable, the std
                      lock adapters) and no raw .lock()/.unlock() calls
                      outside src/common/. Everything must go through the
                      annotated wrappers in common/mutex.h, or Clang's
                      -Wthread-safety analysis is blind to it.
  wall-clock          No wall-clock time or unseeded randomness in
                      src/serving and src/runtime: rand()/srand(),
                      time(NULL), std::random_device, system_clock. The
                      serving plane's determinism contract (bit-identical
                      results for a given seed) only holds if every clock
                      is steady and every RNG is seeded (common/rng.h).
  raw-thread          No std::thread outside src/runtime/. Threads are an
                      execution-substrate concern: everything above the
                      runtime layer composes ThreadPool or ParallelFor,
                      which own the nested-parallelism and shutdown
                      contracts a loose thread silently breaks (a pool
                      worker blocking in join, a detached thread outliving
                      the object it captured).
  unordered-serialize No iteration over an unordered container inside a
                      Serialize function. Unordered iteration order varies
                      by implementation/run; serialized bytes must not.
  fault-point         The FaultPoint catalog (testing/fault_injector.h),
                      its FaultPointName switch, and every MaybeFault /
                      Arm call site agree: each enum member has the
                      lowerCamel name the trace plane interns, and no call
                      site names a point the catalog does not declare.

A finding can be waived on its own line with `// lint:allow(<rule>)`.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
`--self-test` runs every rule against the known-bad fixtures in
tools/lint_fixtures/ and exits nonzero unless each fixture trips exactly
its declared rules (and the clean fixture trips none).
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# ---------------------------------------------------------------- findings


class Finding:
    def __init__(self, rule, path, line_no, line, message):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s\n    %s" % (
            self.path, self.line_no, self.rule, self.message,
            self.line.strip())


ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)")


def allowed(rule, line):
    m = ALLOW_RE.search(line)
    return m is not None and m.group(1) == rule


def strip_comments_and_strings(line):
    """Best-effort removal of // comments and string literals so patterns
    inside them don't trip rules. Keeps column alignment irrelevant (we
    only report whole lines)."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"//.*", "", line)
    return line


# ------------------------------------------------------------- rule: sync

NAKED_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b")
RAW_LOCK_CALL_RE = re.compile(
    r"[\w\)\]]\s*(\.|->)\s*(lock|unlock|try_lock|lock_shared|"
    r"unlock_shared)\s*\(")


def check_naked_sync(path, rel, lines):
    """Rule naked-sync: annotated wrappers only, outside src/common/."""
    out = []
    if not rel.startswith("src/") or rel.startswith("src/common/"):
        return out
    for i, raw in enumerate(lines, 1):
        if allowed("naked-sync", raw):
            continue
        line = strip_comments_and_strings(raw)
        m = NAKED_SYNC_RE.search(line)
        if m:
            out.append(Finding(
                "naked-sync", path, i, raw,
                "use the annotated wrappers in common/mutex.h instead of "
                "std::" + m.group(1)))
            continue
        m = RAW_LOCK_CALL_RE.search(line)
        if m:
            out.append(Finding(
                "naked-sync", path, i, raw,
                "raw ." + m.group(2) + "() call; use MutexLock/SharedLock "
                "or the wrapper's Lock()/Unlock()"))
    return out


# ------------------------------------------------------- rule: raw-thread

# Matches std::thread the type (declarations, constructions, static member
# calls like hardware_concurrency). Deliberately does NOT match
# std::this_thread:: — sleeping/yielding is not spawning.
RAW_THREAD_RE = re.compile(r"std::thread\b")


def check_raw_thread(path, rel, lines):
    """Rule raw-thread: thread spawning stays inside src/runtime/, where
    the pool/ParallelFor lifecycle contracts live. Tests, benches, and
    examples may spawn threads to drive the system from outside."""
    out = []
    if not rel.startswith("src/") or rel.startswith("src/runtime/"):
        return out
    for i, raw in enumerate(lines, 1):
        if allowed("raw-thread", raw):
            continue
        line = strip_comments_and_strings(raw)
        if RAW_THREAD_RE.search(line):
            out.append(Finding(
                "raw-thread", path, i, raw,
                "raw std::thread outside src/runtime/; use ThreadPool or "
                "ParallelFor (runtime/) so lifecycle and nesting contracts "
                "hold"))
    return out


# -------------------------------------------------------- rule: wall-clock

WALL_CLOCK_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("),
     "rand()/srand() is unseeded global state; use common/rng.h"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "wall-clock time() breaks replayability; use a steady clock or a "
     "seeded Rng"),
    (re.compile(r"std::random_device\b"),
     "std::random_device is unseeded; thread a seed through common/rng.h"),
    (re.compile(r"(std::chrono::)?system_clock\b"),
     "system_clock is wall time (can jump); use steady_clock"),
]


def check_wall_clock(path, rel, lines):
    """Rule wall-clock: serving/runtime stay deterministic and monotonic."""
    out = []
    if not (rel.startswith("src/serving/") or rel.startswith("src/runtime/")):
        return out
    for i, raw in enumerate(lines, 1):
        if allowed("wall-clock", raw):
            continue
        line = strip_comments_and_strings(raw)
        for pattern, why in WALL_CLOCK_PATTERNS:
            if pattern.search(line):
                out.append(Finding("wall-clock", path, i, raw, why))
                break
    return out


# ------------------------------------------- rule: unordered-serialize

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)")
SERIALIZE_DEF_RE = re.compile(r"[\w:>\]]\s+(\w*Serialize\w*)\s*\([^;]*$|"
                              r"[\w:>\]]\s+(\w*Serialize\w*)\s*\(.*\)\s*"
                              r"(const)?\s*{")
RANGE_FOR_RE = re.compile(r"for\s*\(.*:\s*&?\s*([A-Za-z_]\w*)\s*\)")


def check_unordered_serialize(path, rel, lines):
    """Rule unordered-serialize: serialized bytes must not depend on hash
    iteration order. Heuristic: inside a function whose name contains
    'Serialize', flag range-for over any variable declared as an unordered
    container in the same file."""
    out = []
    if not rel.startswith("src/"):
        return out
    unordered_names = set()
    for raw in lines:
        line = strip_comments_and_strings(raw)
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return out
    in_serialize = False
    depth = 0
    for i, raw in enumerate(lines, 1):
        line = strip_comments_and_strings(raw)
        if not in_serialize:
            if SERIALIZE_DEF_RE.search(line):
                in_serialize = True
                depth = line.count("{") - line.count("}")
        else:
            depth += line.count("{") - line.count("}")
            if depth <= 0 and "}" in line:
                in_serialize = False
                continue
            if allowed("unordered-serialize", raw):
                continue
            m = RANGE_FOR_RE.search(line)
            if m and m.group(1) in unordered_names:
                out.append(Finding(
                    "unordered-serialize", path, i, raw,
                    "iterating unordered container '" + m.group(1) +
                    "' in a Serialize path; order is not deterministic"))
    return out


# ------------------------------------------------------ rule: fault-point

FAULT_ENUM_RE = re.compile(r"^\s*(k[A-Z]\w*)\s*(=\s*\d+\s*)?,")
FAULT_CASE_RE = re.compile(
    r"case\s+FaultPoint::(k\w+)\s*:(?:\s*return\s*\"(\w+)\";)?")
FAULT_CASE_RETURN_RE = re.compile(r"^\s*return\s*\"(\w+)\";")
FAULT_USE_RE = re.compile(r"FaultPoint::(k\w+)")


def lower_camel(member):
    # kWalAppendBitRot -> walAppendBitRot
    body = member[1:]
    return body[0].lower() + body[1:]


def parse_fault_catalog(header_text):
    members = []
    in_enum = False
    for line in header_text.splitlines():
        stripped = strip_comments_and_strings(line)
        if "enum class FaultPoint" in stripped:
            in_enum = True
            continue
        if in_enum:
            if "}" in stripped:
                break
            m = FAULT_ENUM_RE.match(stripped)
            if m:
                members.append(m.group(1))
    return members


def check_fault_points(files):
    """Rule fault-point: catalog, name switch, and call sites agree."""
    out = []
    header = impl = None
    for path, rel, lines in files:
        stripped = "\n".join(strip_comments_and_strings(l) for l in lines)
        # The catalog normally lives in testing/fault_injector.h; fixtures
        # carry a self-contained pretend catalog, so detect by content.
        if "enum class FaultPoint" in stripped and (
                header is None or rel.endswith("testing/fault_injector.h")):
            header = (path, lines)
        if rel.endswith("testing/fault_injector.cc") or (
                "FaultPointName" in stripped
                and "case FaultPoint::" in stripped):
            impl = (path, lines)
    if header is None:
        return out  # nothing to check in this tree
    members = parse_fault_catalog("\n".join(header[1]))
    sentinel = "kNumFaultPoints"
    valid = set(members)
    # Every FaultPoint::kX use anywhere must be a declared member.
    for path, rel, lines in files:
        for i, raw in enumerate(lines, 1):
            if allowed("fault-point", raw):
                continue
            line = strip_comments_and_strings(raw)
            for m in FAULT_USE_RE.finditer(line):
                if m.group(1) not in valid:
                    out.append(Finding(
                        "fault-point", path, i, raw,
                        "FaultPoint::" + m.group(1) + " is not declared in "
                        "the catalog (testing/fault_injector.h)"))
    # The FaultPointName switch must return the lowerCamel form of every
    # member (the string the trace plane interns as 'fault:<name>').
    if impl is not None:
        named = {}
        pending = None
        for i, raw in enumerate(impl[1], 1):
            # Keep string literals: the case's return value IS the check.
            line = re.sub(r"//.*", "", raw)
            if pending is not None:
                m = FAULT_CASE_RETURN_RE.match(line)
                if m:
                    named[pending[0]] = (m.group(1), pending[1])
                pending = None
            m = FAULT_CASE_RE.search(line)
            if m:
                if m.group(2) is not None:
                    named[m.group(1)] = (m.group(2), i)
                else:
                    pending = (m.group(1), i)
        for member in members:
            if member == sentinel:
                continue
            if member not in named:
                out.append(Finding(
                    "fault-point", impl[0], 1, "FaultPointName(...)",
                    "no FaultPointName case for FaultPoint::" + member))
            elif named[member][0] != lower_camel(member):
                name, line_no = named[member]
                out.append(Finding(
                    "fault-point", impl[0], line_no,
                    'return "%s";' % name,
                    "FaultPointName(%s) is \"%s\"; expected the lowerCamel "
                    "form \"%s\"" % (member, name, lower_camel(member))))
    return out


# ----------------------------------------------------------------- driver

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
EXTS = (".h", ".cc", ".cpp")


def collect_files(root):
    files = []
    for scan in SCAN_DIRS:
        base = os.path.join(root, scan)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for fn in sorted(filenames):
                if not fn.endswith(EXTS):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, "r", encoding="utf-8") as f:
                    files.append((path, rel, f.read().splitlines()))
    return files


def run_rules(files):
    findings = []
    for path, rel, lines in files:
        findings += check_naked_sync(path, rel, lines)
        findings += check_raw_thread(path, rel, lines)
        findings += check_wall_clock(path, rel, lines)
        findings += check_unordered_serialize(path, rel, lines)
    findings += check_fault_points(files)
    return findings


# -------------------------------------------------------------- self-test

FIXTURE_AS_RE = re.compile(r"//\s*lint-fixture-as:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([\w-]+)")


def self_test():
    """Each fixture declares the path it pretends to live at
    (`// lint-fixture-as: src/serving/x.cc`) and the rules it must trip
    (`// lint-expect: naked-sync`, one line per expected rule; none for
    the clean fixture). The self-test fails on any mismatch — including a
    rule firing where it shouldn't, the regression mode that quietly turns
    a lint into noise."""
    fixture_dir = os.path.join(REPO_ROOT, "tools", "lint_fixtures")
    if not os.path.isdir(fixture_dir):
        print("lint self-test: missing " + fixture_dir, file=sys.stderr)
        return 2
    failures = 0
    ran = 0
    for fn in sorted(os.listdir(fixture_dir)):
        if not fn.endswith(EXTS):
            continue
        path = os.path.join(fixture_dir, fn)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        as_m = FIXTURE_AS_RE.search(text)
        if not as_m:
            print("self-test: %s lacks a lint-fixture-as header" % fn,
                  file=sys.stderr)
            failures += 1
            continue
        pretend = as_m.group(1)
        expected = sorted(FIXTURE_EXPECT_RE.findall(text))
        files = [(path, pretend, text.splitlines())]
        got = sorted(set(f.rule for f in run_rules(files)))
        ran += 1
        if got != sorted(set(expected)):
            print("self-test FAIL %s (as %s): expected rules %s, got %s"
                  % (fn, pretend, expected or ["<none>"], got or ["<none>"]),
                  file=sys.stderr)
            failures += 1
        else:
            print("self-test ok   %s: %s" % (fn, expected or ["clean"]))
    if ran == 0:
        print("self-test: no fixtures found", file=sys.stderr)
        return 2
    if failures:
        print("lint self-test: %d fixture(s) failed" % failures,
              file=sys.stderr)
        return 1
    print("lint self-test: %d fixture(s) passed" % ran)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root to scan (default: the checkout)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rules against tools/lint_fixtures/")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = run_rules(collect_files(args.root))
    for f in findings:
        print(f)
    if findings:
        print("\nlint_qcore: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("lint_qcore: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
