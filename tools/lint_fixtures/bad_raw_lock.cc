// lint-fixture-as: src/runtime/bad_raw_lock.cc
// lint-expect: naked-sync
// Raw .lock()/.unlock() pairs bypass the scoped wrappers (and their
// annotations) even when the mutex itself is the wrapped type.
#include "common/mutex.h"

namespace qcore {

class BadCounter {
 public:
  void Bump() {
    mu_.lock();
    ++n_;
    mu_.unlock();
  }

 private:
  Mutex mu_;
  int n_ = 0;
};

}  // namespace qcore
