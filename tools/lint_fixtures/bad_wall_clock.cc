// lint-fixture-as: src/serving/bad_wall_clock.cc
// lint-expect: wall-clock
// Unseeded randomness in the serving plane breaks the bit-identical
// replay contract.
#include <cstdlib>
#include <random>

namespace qcore {

int BadJitter() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

}  // namespace qcore
