// lint-fixture-as: src/serving/bad_naked_sync.cc
// lint-expect: naked-sync
// A std primitive outside src/common/ is invisible to -Wthread-safety.
#include <mutex>

namespace qcore {

class BadQueue {
 public:
  void Push(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
  }

 private:
  std::mutex mu_;
  int value_ = 0;
};

}  // namespace qcore
