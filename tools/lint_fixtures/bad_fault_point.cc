// lint-fixture-as: src/serving/bad_fault_point.cc
// lint-expect: fault-point
// A call site naming a point the catalog does not declare compiles fine
// in a file that forward-declares its own enum — the lint is the net.
#include <cstdint>

namespace qcore {

// Pretend catalog so the fixture is self-contained for the checker.
enum class FaultPoint : uint8_t {
  kWalAppendBitRot = 0,
  kNumFaultPoints,
};

// testing/fault_injector.h sentinel for the self-test parser.
// enum class FaultPoint lives in the real tree; the checker reads the
// fixture's own pretend header text below.

bool MaybeFault(FaultPoint, uint64_t* = nullptr);

void BadSeam() {
  // kTotallyMadeUpPoint is not in the catalog.
  MaybeFault(FaultPoint::kTotallyMadeUpPoint);
}

}  // namespace qcore
