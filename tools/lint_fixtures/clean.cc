// lint-fixture-as: src/serving/clean.cc
// No lint-expect lines: this fixture must trip nothing — the self-test's
// guard against rules that over-fire and train people to ignore the lint.
#include <chrono>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace qcore {

class GoodCounter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++n_;
  }

  int Jitter() {
    MutexLock lock(mu_);
    return static_cast<int>(rng_.NextUint64() & 0xff);
  }

 private:
  mutable Mutex mu_;
  Rng rng_ QCORE_GUARDED_BY(mu_){42};
  int n_ QCORE_GUARDED_BY(mu_) = 0;
};

}  // namespace qcore
