// lint-fixture-as: src/serving/rogue_worker.cc
// lint-expect: raw-thread
//
// Known-bad input for the raw-thread rule: a serving-layer class spawning
// its own std::thread instead of going through runtime/ThreadPool or
// runtime/ParallelFor. The loose thread has no nested-parallelism contract
// (it can block inside a pool callback) and no shutdown ordering (it can
// outlive the session state it captured) — exactly the bugs the runtime
// layer's primitives exist to make impossible.
#include <thread>

namespace qcore {

class RogueWorker {
 public:
  void Start() {
    worker_ = std::thread([this] { Pump(); });
  }
  void Stop() { worker_.join(); }

 private:
  void Pump() {}

  std::thread worker_;
};

// std::this_thread is NOT spawning and must not trip the rule; this line
// doubles as the false-positive probe for the self-test (if the regex ever
// loosens to match it, the fixture's expected-rule set stops matching).
inline void NapBriefly() { std::this_thread::yield(); }

}  // namespace qcore
