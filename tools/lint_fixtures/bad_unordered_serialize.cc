// lint-fixture-as: src/obs/bad_unordered_serialize.cc
// lint-expect: unordered-serialize
// Serialized bytes must not depend on hash-table iteration order.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace qcore {

class BadRegistry {
 public:
  std::vector<uint8_t> Serialize() const {
    std::vector<uint8_t> out;
    for (const auto& entry : counters_) {
      out.push_back(static_cast<uint8_t>(entry.second));
    }
    return out;
  }

 private:
  std::unordered_map<std::string, int> counters_;
};

}  // namespace qcore
